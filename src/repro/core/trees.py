"""Disjoint aggregation tree construction (Phase I, logical form).

Implements Section III-B as a synchronous-round process directly on the
topology: the base station announces itself as both a red and a blue
aggregator; a node that has heard HELLOs from at least one aggregator
of *each* colour elects its role (Equations 1–2), picks the shallowest
same-colour aggregator it heard as parent, and — if it became an
aggregator — announces itself to its neighbours in the next round.
Nodes that never hear both colours never join (data-loss factor (a)).

This logical builder is loss-free and instantaneous; the event-driven
variant that rides the full radio stack lives in
:mod:`repro.protocols.ipda` and produces the same structures.  The
logical form is what the paper's own coverage analysis (Section IV-A.1)
describes, and it powers Figures 8(a)/8(b) at scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from ..errors import ProtocolError
from ..net.topology import Topology
from ..sim.messages import TreeColor
from .config import IpdaConfig, RoleMode

__all__ = ["NodeRole", "DisjointTrees", "build_disjoint_trees", "role_probabilities"]


@dataclass(frozen=True)
class NodeRole:
    """The Phase-I outcome for one node.

    ``color`` is None for leaf nodes.  ``parent``/``hops`` are set only
    for aggregators (their position in their colour's tree).
    """

    color: Optional[TreeColor]
    parent: Optional[int] = None
    hops: int = 0

    @property
    def is_aggregator(self) -> bool:
        """True when the node joined one of the trees."""
        return self.color is not None


def role_probabilities(
    n_red_heard: int,
    n_blue_heard: int,
    *,
    mode: RoleMode,
    budget: int,
) -> Tuple[float, float]:
    """Return ``(p_r, p_b)`` per Equations 1–2 of the paper.

    Adaptive mode balances colours: the probability of turning red is
    proportional to how many *blue* HELLOs were heard, and the total
    aggregator probability is ``min(1, k / (N_blue + N_red))``.
    """
    total = n_red_heard + n_blue_heard
    if total <= 0:
        raise ProtocolError("role election requires at least one HELLO heard")
    if mode is RoleMode.FIXED:
        return 0.5, 0.5
    p = 1.0 if total <= budget else budget / total
    p_red = p * (n_blue_heard / total)
    p_blue = p * (n_red_heard / total)
    return p_red, p_blue


@dataclass
class DisjointTrees:
    """Result of Phase I over a topology.

    The base station belongs to both trees (it is the root of each);
    every other node has exactly one role.
    """

    topology: Topology
    base_station: int
    roles: Dict[int, NodeRole] = field(default_factory=dict)
    #: HELLO senders each node heard, per colour (aggregator ids).
    heard: Dict[int, Dict[TreeColor, FrozenSet[int]]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Membership queries
    # ------------------------------------------------------------------
    def role_of(self, node_id: int) -> NodeRole:
        """Role of ``node_id`` (leaf-with-no-colour if it never decided)."""
        return self.roles.get(node_id, NodeRole(color=None))

    def aggregators(self, color: TreeColor) -> Set[int]:
        """All aggregators of one colour, **excluding** the base station."""
        return {
            node_id
            for node_id, role in self.roles.items()
            if role.color is color and node_id != self.base_station
        }

    def heard_aggregators(self, node_id: int, color: TreeColor) -> FrozenSet[int]:
        """Aggregators of ``color`` whose HELLO ``node_id`` heard.

        Includes the base station when it is in range (it announces as
        both colours).
        """
        by_color = self.heard.get(node_id)
        if by_color is None:
            return frozenset()
        return by_color.get(color, frozenset())

    # ------------------------------------------------------------------
    # Coverage / participation (Figure 8 metrics)
    # ------------------------------------------------------------------
    def is_covered(self, node_id: int) -> bool:
        """Heard at least one aggregator of each colour (factor (a))."""
        if node_id == self.base_station:
            return True
        return bool(
            self.heard_aggregators(node_id, TreeColor.RED)
            and self.heard_aggregators(node_id, TreeColor.BLUE)
        )

    def covered_nodes(self) -> Set[int]:
        """All covered nodes, base station included."""
        return {
            node_id
            for node_id in range(self.topology.node_count)
            if self.is_covered(node_id)
        }

    def can_participate(self, node_id: int, slices: int) -> bool:
        """Covered *and* enough slice targets of each colour (factor (b)).

        A node needs ``l`` aggregators per colour counting itself for
        its own colour (Section III-C.1), i.e. ``l - 1`` remote peers of
        its own colour and ``l`` of the other.
        """
        if node_id == self.base_station:
            return True
        role = self.role_of(node_id)
        for color in (TreeColor.RED, TreeColor.BLUE):
            candidates = set(self.heard_aggregators(node_id, color))
            candidates.discard(node_id)
            needed = slices - 1 if role.color is color else slices
            if len(candidates) < needed:
                return False
        return True

    def participants(self, slices: int) -> Set[int]:
        """Nodes able to contribute their reading, base station excluded."""
        return {
            node_id
            for node_id in range(self.topology.node_count)
            if node_id != self.base_station
            and self.can_participate(node_id, slices)
        }

    # ------------------------------------------------------------------
    # Structural invariants (tested)
    # ------------------------------------------------------------------
    def is_node_disjoint(self) -> bool:
        """No node other than the base station is in both trees."""
        red = self.aggregators(TreeColor.RED)
        blue = self.aggregators(TreeColor.BLUE)
        return not (red & blue)

    def parent_map(self, color: TreeColor) -> Dict[int, Optional[int]]:
        """``{aggregator: parent}`` for one tree; the root maps to None."""
        parents: Dict[int, Optional[int]] = {self.base_station: None}
        for node_id, role in self.roles.items():
            if role.color is color and node_id != self.base_station:
                parents[node_id] = role.parent
        return parents

    def tree_is_consistent(self, color: TreeColor) -> bool:
        """Every parent is an aggregator of the same tree (or the BS)."""
        members = self.aggregators(color) | {self.base_station}
        for node_id in self.aggregators(color):
            parent = self.roles[node_id].parent
            if parent is None or parent not in members:
                return False
        return True

    def summary(self) -> Dict[str, object]:
        """Headline counts for tables."""
        n = self.topology.node_count
        red = len(self.aggregators(TreeColor.RED))
        blue = len(self.aggregators(TreeColor.BLUE))
        covered = len(self.covered_nodes())
        return {
            "nodes": n,
            "red_aggregators": red,
            "blue_aggregators": blue,
            "leaves": n - 1 - red - blue,
            "covered": covered,
            "covered_fraction": covered / n if n else 0.0,
        }


def build_disjoint_trees(
    topology: Topology,
    config: IpdaConfig,
    rng: np.random.Generator,
    *,
    base_station: int = 0,
    max_rounds: Optional[int] = None,
) -> DisjointTrees:
    """Run the logical Phase I process and return the trees.

    Deterministic given ``rng`` state: nodes decide in ascending id
    order within each synchronous round.
    """
    n = topology.node_count
    if not 0 <= base_station < n:
        raise ProtocolError(f"base station id {base_station} out of range")
    limit = max_rounds if max_rounds is not None else n + 1

    heard: Dict[int, Dict[TreeColor, Set[int]]] = {
        node_id: {TreeColor.RED: set(), TreeColor.BLUE: set()}
        for node_id in range(n)
    }
    roles: Dict[int, NodeRole] = {}
    hops: Dict[int, int] = {base_station: 0}

    # The base station announces itself as an aggregator of both colours.
    announcements: List[Tuple[int, TreeColor, int]] = [
        (base_station, TreeColor.RED, 0),
        (base_station, TreeColor.BLUE, 0),
    ]

    for _round in range(limit):
        if not announcements:
            break
        # Deliver this round's HELLOs to every neighbour.
        for sender, color, _sender_hops in announcements:
            for nbr in topology.neighbors(sender):
                heard[nbr][color].add(sender)
        announcements = []
        # Nodes that now hear both colours (and are undecided) elect roles.
        for node_id in range(n):
            if node_id == base_station or node_id in roles:
                continue
            heard_red = heard[node_id][TreeColor.RED]
            heard_blue = heard[node_id][TreeColor.BLUE]
            if not heard_red or not heard_blue:
                continue
            p_red, p_blue = role_probabilities(
                len(heard_red),
                len(heard_blue),
                mode=config.role_mode,
                budget=config.aggregator_budget,
            )
            draw = float(rng.random())
            if draw < p_red:
                color: Optional[TreeColor] = TreeColor.RED
            elif draw < p_red + p_blue:
                color = TreeColor.BLUE
            else:
                color = None
            if color is None:
                roles[node_id] = NodeRole(color=None)
                continue
            heard_own = heard_red if color is TreeColor.RED else heard_blue
            parent = min(heard_own, key=lambda a: (hops.get(a, 0), a))
            node_hops = hops.get(parent, 0) + 1
            roles[node_id] = NodeRole(color=color, parent=parent, hops=node_hops)
            hops[node_id] = node_hops
            announcements.append((node_id, color, node_hops))

    return DisjointTrees(
        topology=topology,
        base_station=base_station,
        roles=roles,
        heard={
            node_id: {
                color: frozenset(senders)
                for color, senders in by_color.items()
            }
            for node_id, by_color in heard.items()
        },
    )
