"""High-level iPDA orchestration.

Two entry points:

* :func:`run_lossless_round` — the whole iPDA pipeline (tree
  construction, slicing, assembling, dual-tree aggregation, integrity
  check) executed *logically* on a topology, with no radio and no
  losses.  This is the reference implementation the property tests pin
  against (Equations 3–6 hold exactly) and what the large-N experiments
  use where the paper's own analysis abstracts the channel away.

* :func:`aggregate_statistic` — runs any
  :class:`~repro.protocols.aggregates.AdditiveStatistic` (AVERAGE,
  VARIANCE, ...) on top of any protocol by running one aggregation
  round per additive component and decoding the totals, exactly the
  reduction Section II-B describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from ..errors import ProtocolError
from ..net.topology import Topology
from ..sim.messages import TreeColor
from ..sim.rng import RngStreams
from .config import IpdaConfig
from .integrity import DegradationPolicy, IntegrityChecker
from .slicing import SliceAssembler, plan_slices
from .trees import DisjointTrees, build_disjoint_trees

__all__ = [
    "run_lossless_round",
    "aggregate_statistic",
    "LosslessRound",
    "NodeFlows",
]


@dataclass
class NodeFlows:
    """The slice traffic of one node in one round (for attack analysis).

    ``outgoing`` maps each colour to the list of ``(target, piece)``
    transmissions of that cut; ``kept`` is the locally retained piece
    (None for leaf nodes); ``incoming`` lists ``(sender, piece)`` slices
    this node received as an aggregator.
    """

    node_id: int
    reading: int
    outgoing: Dict[TreeColor, List[Tuple[int, int]]] = field(
        default_factory=dict
    )
    kept: Optional[int] = None
    incoming: List[Tuple[int, int]] = field(default_factory=list)

    def kept_cut_color(self) -> Optional[TreeColor]:
        """Which cut retained a local piece (None for leaf senders).

        The self-including cut transmits one piece fewer than the other,
        so it is identifiable by length.
        """
        if self.kept is None:
            return None
        red = len(self.outgoing.get(TreeColor.RED, []))
        blue = len(self.outgoing.get(TreeColor.BLUE, []))
        if red < blue:
            return TreeColor.RED
        if blue < red:
            return TreeColor.BLUE
        return None

    def cut_is_complete(self, color: TreeColor) -> bool:
        """True when every piece of the ``color`` cut went on the air."""
        return self.kept_cut_color() is not color or self.kept is None


class LosslessRound:
    """Result of a logical (no-radio) iPDA round.

    Mirrors the fields of :class:`repro.protocols.ipda.IpdaOutcome`
    that matter analytically, plus the constructed trees.
    """

    def __init__(
        self,
        *,
        trees: DisjointTrees,
        s_red: int,
        s_blue: int,
        verification,
        participants: Set[int],
        true_total: int,
        participant_total: int,
        slice_transmissions: int,
        flows: Optional[Dict[int, "NodeFlows"]] = None,
    ):
        self.trees = trees
        self.s_red = s_red
        self.s_blue = s_blue
        self.verification = verification
        self.participants = participants
        self.true_total = true_total
        self.participant_total = participant_total
        self.slice_transmissions = slice_transmissions
        self.flows = flows

    @property
    def accepted(self) -> bool:
        """Did the base station accept the round?"""
        return self.verification.accepted

    @property
    def outcome(self) -> str:
        """``"accepted"``, ``"degraded"``, or ``"rejected"``."""
        return self.verification.outcome

    @property
    def reported(self) -> Optional[int]:
        """The reported value (full or degraded), or None on rejection."""
        return self.verification.report_value

    @property
    def accuracy(self) -> float:
        """Collected / real ratio over *all* sensors."""
        if self.reported is None or self.true_total == 0:
            return 0.0
        return self.reported / self.true_total


def run_lossless_round(
    topology: Topology,
    readings: Mapping[int, int],
    config: Optional[IpdaConfig] = None,
    *,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
    base_station: int = 0,
    contributors: Optional[Set[int]] = None,
    polluters: Optional[Mapping[int, int]] = None,
    key_scheme=None,
    trees: Optional[DisjointTrees] = None,
    record_flows: bool = False,
    crashed: Optional[Set[int]] = None,
) -> LosslessRound:
    """Run one logical iPDA round with perfect transport.

    ``key_scheme`` (a :class:`~repro.crypto.keys.KeyManagementScheme`)
    restricts slice targets to aggregators the sender shares a key with;
    None means no restriction (pairwise keys always exist).
    ``trees`` reuses a previously built Phase-I result.
    ``record_flows`` retains every slice transmission in
    :attr:`LosslessRound.flows` for the attack modules.
    ``crashed`` marks fail-stopped nodes: they neither contribute a
    reading nor — when they were elected aggregators — deliver their
    assembled tree share, so every slice piece scattered to them is
    lost.  With ``config.robustness.degradation`` enabled the integrity
    check then runs with per-tree piece coverage, letting the base
    station degrade gracefully instead of rejecting.
    """
    cfg = config if config is not None else IpdaConfig()
    generator = rng if rng is not None else RngStreams(seed).get("lossless")
    if base_station in readings:
        raise ProtocolError("the base station does not produce a reading")

    if trees is None:
        trees = build_disjoint_trees(
            topology, cfg, generator, base_station=base_station
        )
    magnitude = cfg.effective_magnitude(readings.values())

    assemblers: Dict[int, Dict[TreeColor, SliceAssembler]] = {
        base_station: {
            TreeColor.RED: SliceAssembler(base_station),
            TreeColor.BLUE: SliceAssembler(base_station),
        }
    }
    for color in (TreeColor.RED, TreeColor.BLUE):
        for aggregator in trees.aggregators(color):
            assemblers[aggregator] = {color: SliceAssembler(aggregator)}

    dead: Set[int] = set(crashed) if crashed else set()
    participants: Set[int] = set()
    slice_transmissions = 0
    flows: Optional[Dict[int, NodeFlows]] = {} if record_flows else None
    for node_id in sorted(readings):
        if contributors is not None and node_id not in contributors:
            continue
        if node_id in dead:
            continue  # fail-stopped before it could slice
        role = trees.role_of(node_id)
        candidates = {}
        for color in (TreeColor.RED, TreeColor.BLUE):
            options = set(trees.heard_aggregators(node_id, color))
            options.discard(node_id)
            if key_scheme is not None:
                options = {
                    a
                    for a in options
                    if key_scheme.can_communicate(node_id, a)
                }
            candidates[color] = sorted(options)
        try:
            plans = plan_slices(
                node_id,
                int(readings[node_id]),
                own_color=role.color,
                red_candidates=candidates[TreeColor.RED],
                blue_candidates=candidates[TreeColor.BLUE],
                pieces=cfg.slices,
                rng=generator,
                magnitude=magnitude,
            )
        except ProtocolError:
            continue  # factor (b): not enough aggregators in range
        participants.add(node_id)
        node_flow = (
            NodeFlows(node_id=node_id, reading=int(readings[node_id]))
            if flows is not None
            else None
        )
        for color, plan in plans.items():
            if plan.kept is not None:
                assemblers[node_id][color].keep(plan.kept)
                if node_flow is not None:
                    node_flow.kept = plan.kept
            for target, piece in plan.outgoing:
                assemblers[target][color].receive(node_id, piece)
                slice_transmissions += 1
                if flows is not None:
                    assert node_flow is not None
                    node_flow.outgoing.setdefault(color, []).append(
                        (target, piece)
                    )
                    target_flow = flows.get(target)
                    if target_flow is None:
                        target_flow = NodeFlows(
                            node_id=target,
                            reading=int(readings.get(target, 0)),
                        )
                        flows[target] = target_flow
                    target_flow.incoming.append((node_id, piece))
        if flows is not None:
            assert node_flow is not None
            existing = flows.get(node_id)
            if existing is not None:
                # Preserve incoming slices recorded before this node
                # took its turn as a sender.
                node_flow.incoming.extend(existing.incoming)
            flows[node_id] = node_flow

    totals: Dict[TreeColor, int] = {}
    pieces: Dict[TreeColor, int] = {}
    pollution = dict(polluters) if polluters else {}
    for color in (TreeColor.RED, TreeColor.BLUE):
        total = assemblers[base_station][color].assembled_value()
        count = assemblers[base_station][color].piece_count
        for aggregator in trees.aggregators(color):
            if aggregator in dead:
                continue  # its assembled share (and pieces) died with it
            total += assemblers[aggregator][color].assembled_value()
            count += assemblers[aggregator][color].piece_count
        # Any aggregator's additive tampering lands in its own tree's sum.
        for polluter, offset in pollution.items():
            if polluter in dead:
                continue
            if trees.role_of(polluter).color is color:
                total += int(offset)
        totals[color] = total
        pieces[color] = count

    checker = IntegrityChecker(cfg.threshold)
    robustness = cfg.robustness
    if robustness is not None and robustness.degradation:
        slack = robustness.piece_slack
        if slack is None:
            # The final piece of an l-cut can reach |reading| +
            # (l-1)*magnitude, so the per-piece bound scales with l.
            slack = magnitude * max(2, cfg.slices)
        verification = checker.verify(
            totals[TreeColor.RED],
            totals[TreeColor.BLUE],
            pieces_red=pieces[TreeColor.RED],
            pieces_blue=pieces[TreeColor.BLUE],
            expected_pieces=len(participants) * cfg.slices,
            policy=DegradationPolicy(
                piece_slack=slack,
                max_missing_fraction=robustness.max_missing_fraction,
            ),
        )
    else:
        verification = checker.verify(
            totals[TreeColor.RED], totals[TreeColor.BLUE]
        )
    return LosslessRound(
        trees=trees,
        s_red=totals[TreeColor.RED],
        s_blue=totals[TreeColor.BLUE],
        verification=verification,
        participants=participants,
        true_total=sum(int(v) for v in readings.values()),
        participant_total=sum(int(readings[i]) for i in participants),
        slice_transmissions=slice_transmissions,
        flows=flows,
    )


def aggregate_statistic(
    protocol,
    topology: Topology,
    readings: Mapping[int, int],
    statistic,
    *,
    streams: RngStreams,
    base_round_id: int = 0,
):
    """Compute an :class:`AdditiveStatistic` via repeated additive rounds.

    Every component runs under the *same* ``round_id``, so all
    components ride identical Phase-I trees and participant sets — the
    paper's sensors contribute their ``(r², r, 1)`` inputs within one
    aggregation round, and ratios such as AVERAGE stay consistent only
    when numerator and denominator cover the same sensors.

    Returns ``(value, outcomes)`` where ``value`` is the decoded
    statistic (None if any component round was rejected or lost) and
    ``outcomes`` the per-component round outcomes.
    """
    encoded = {
        node_id: statistic.encode(int(reading))
        for node_id, reading in readings.items()
    }
    totals = []
    outcomes = []
    for component in range(statistic.component_count):
        component_readings = {
            node_id: parts[component] for node_id, parts in encoded.items()
        }
        outcome = protocol.run_round(
            topology,
            component_readings,
            streams=streams,
            round_id=base_round_id,
        )
        outcomes.append(outcome)
        totals.append(outcome.reported)
    if any(total is None for total in totals):
        return None, outcomes
    return statistic.decode(totals), outcomes
