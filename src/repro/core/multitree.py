"""Generalised m-tree iPDA (the paper's m > 2 extension).

Section III-B notes the disjoint tree construction "can be easily
generalized to build multiple aggregation trees (m > 2)" at the price
of needing a denser network.  This module implements that
generalisation end to end on the logical pipeline:

* Phase I with ``m`` colours — a node decides once it has heard every
  colour, picks each colour with probability ``1/m`` (or the adaptive
  budget rule), and joins that colour's tree;
* Phase II with ``m`` independent cuts per reading — ``m*l - 1``
  transmissions per aggregator (the m = 2 case reduces to the paper's
  ``2l - 1``);
* Phase III with **majority verification** — with m ≥ 3 the base
  station does not merely detect pollution: the tree(s) disagreeing
  with the majority are identified and the majority value is *still
  accepted*, turning detection into tolerance.

The trade-offs (coverage needs density ~ m, overhead ~ (m*l+1)/2) are
quantified by :func:`multitree_isolation_probability` and the
``ablation-trees`` experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

import numpy as np

from ..errors import AnalysisError, ProtocolError
from ..net.topology import Topology
from .slicing import SliceAssembler, slice_value

__all__ = [
    "MultiTreeRole",
    "MultiTrees",
    "build_multi_trees",
    "MultiTreeVerification",
    "run_multitree_round",
    "multitree_isolation_probability",
    "multitree_messages_per_node",
]


@dataclass(frozen=True)
class MultiTreeRole:
    """Phase-I outcome for one node in the m-tree setting."""

    color: Optional[int]  # tree index 0..m-1, None for non-participants
    parent: Optional[int] = None
    hops: int = 0

    @property
    def is_aggregator(self) -> bool:
        """True when the node joined one of the m trees."""
        return self.color is not None


@dataclass
class MultiTrees:
    """Result of Phase I with m colours."""

    topology: Topology
    base_station: int
    tree_count: int
    roles: Dict[int, MultiTreeRole] = field(default_factory=dict)
    heard: Dict[int, List[FrozenSet[int]]] = field(default_factory=dict)

    def role_of(self, node_id: int) -> MultiTreeRole:
        """Role of ``node_id`` (undecided nodes read as colourless)."""
        return self.roles.get(node_id, MultiTreeRole(color=None))

    def aggregators(self, color: int) -> Set[int]:
        """Aggregators of tree ``color`` (base station excluded)."""
        self._check_color(color)
        return {
            node_id
            for node_id, role in self.roles.items()
            if role.color == color and node_id != self.base_station
        }

    def heard_aggregators(self, node_id: int, color: int) -> FrozenSet[int]:
        """Tree-``color`` aggregators whose HELLO ``node_id`` heard."""
        self._check_color(color)
        by_color = self.heard.get(node_id)
        if by_color is None:
            return frozenset()
        return by_color[color]

    def is_covered(self, node_id: int) -> bool:
        """Heard at least one aggregator of *every* colour."""
        if node_id == self.base_station:
            return True
        by_color = self.heard.get(node_id)
        if by_color is None:
            return False
        return all(by_color[c] for c in range(self.tree_count))

    def covered_nodes(self) -> Set[int]:
        """All covered nodes, base station included."""
        return {
            node_id
            for node_id in range(self.topology.node_count)
            if self.is_covered(node_id)
        }

    def can_participate(self, node_id: int, slices: int) -> bool:
        """Covered and enough slice targets on every tree."""
        if node_id == self.base_station:
            return True
        role = self.role_of(node_id)
        for color in range(self.tree_count):
            candidates = set(self.heard_aggregators(node_id, color))
            candidates.discard(node_id)
            needed = slices - 1 if role.color == color else slices
            if len(candidates) < needed:
                return False
        return True

    def participants(self, slices: int) -> Set[int]:
        """Sensors able to contribute their reading."""
        return {
            node_id
            for node_id in range(self.topology.node_count)
            if node_id != self.base_station
            and self.can_participate(node_id, slices)
        }

    def is_node_disjoint(self) -> bool:
        """Each node sits on at most one tree (trivially true by role)."""
        seen: Set[int] = set()
        for color in range(self.tree_count):
            aggs = self.aggregators(color)
            if aggs & seen:
                return False
            seen |= aggs
        return True

    def _check_color(self, color: int) -> None:
        if not 0 <= color < self.tree_count:
            raise ProtocolError(
                f"tree colour {color} out of range 0..{self.tree_count - 1}"
            )


def build_multi_trees(
    topology: Topology,
    tree_count: int,
    rng: np.random.Generator,
    *,
    base_station: int = 0,
    max_rounds: Optional[int] = None,
) -> MultiTrees:
    """Run the logical Phase-I process with ``tree_count`` colours.

    The base station announces itself as an aggregator of every colour;
    a node decides once it has heard all colours, choosing each with
    probability ``1/m`` (the Equation-2 regime generalised).
    """
    if tree_count < 2:
        raise ProtocolError("need at least 2 trees (the paper's m = 2)")
    n = topology.node_count
    if not 0 <= base_station < n:
        raise ProtocolError(f"base station id {base_station} out of range")
    limit = max_rounds if max_rounds is not None else n + 1

    heard: Dict[int, List[Set[int]]] = {
        node_id: [set() for _ in range(tree_count)] for node_id in range(n)
    }
    roles: Dict[int, MultiTreeRole] = {}
    hops: Dict[int, int] = {base_station: 0}
    announcements: List[Tuple[int, int, int]] = [
        (base_station, color, 0) for color in range(tree_count)
    ]

    for _round in range(limit):
        if not announcements:
            break
        for sender, color, _sender_hops in announcements:
            for nbr in topology.neighbors(sender):
                heard[nbr][color].add(sender)
        announcements = []
        for node_id in range(n):
            if node_id == base_station or node_id in roles:
                continue
            if not all(heard[node_id][c] for c in range(tree_count)):
                continue
            color = int(rng.integers(0, tree_count))
            heard_own = heard[node_id][color]
            parent = min(heard_own, key=lambda a: (hops.get(a, 0), a))
            node_hops = hops.get(parent, 0) + 1
            roles[node_id] = MultiTreeRole(
                color=color, parent=parent, hops=node_hops
            )
            hops[node_id] = node_hops
            announcements.append((node_id, color, node_hops))

    return MultiTrees(
        topology=topology,
        base_station=base_station,
        tree_count=tree_count,
        roles=roles,
        heard={
            node_id: [frozenset(s) for s in by_color]
            for node_id, by_color in heard.items()
        },
    )


@dataclass
class MultiTreeVerification:
    """Majority verification over m tree sums.

    Trees whose sum sits within ``threshold`` of the majority cluster's
    value form the majority; the rest are flagged as polluted.  With
    m = 2 this degenerates to the paper's accept/reject rule (an empty
    ``polluted_trees`` means accepted, and no identification is
    possible on disagreement).
    """

    sums: List[int]
    threshold: int

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ProtocolError("threshold must be >= 0")
        if len(self.sums) < 2:
            raise ProtocolError("need at least two tree sums")

    def _clusters(self) -> List[List[int]]:
        """Group tree indices whose sums agree pairwise within Th."""
        indices = sorted(range(len(self.sums)), key=lambda i: self.sums[i])
        clusters: List[List[int]] = []
        for index in indices:
            placed = False
            for cluster in clusters:
                if all(
                    abs(self.sums[index] - self.sums[j]) <= self.threshold
                    for j in cluster
                ):
                    cluster.append(index)
                    placed = True
                    break
            if not placed:
                clusters.append([index])
        return clusters

    @property
    def majority_trees(self) -> List[int]:
        """Indices of the largest agreeing cluster (ties -> no majority)."""
        clusters = sorted(self._clusters(), key=len, reverse=True)
        if len(clusters) > 1 and len(clusters[0]) == len(clusters[1]):
            return []
        return sorted(clusters[0])

    @property
    def polluted_trees(self) -> List[int]:
        """Trees outside the majority cluster."""
        majority = set(self.majority_trees)
        if not majority:
            return sorted(range(len(self.sums)))
        return sorted(set(range(len(self.sums))) - majority)

    @property
    def accepted(self) -> bool:
        """A strict majority of trees agrees."""
        return len(self.majority_trees) > len(self.sums) / 2

    @property
    def accepted_value(self) -> int:
        """Midpoint of the majority cluster's sums."""
        majority = self.majority_trees
        if not self.accepted:
            from ..errors import IntegrityError

            raise IntegrityError(
                f"no majority among tree sums {self.sums} (Th="
                f"{self.threshold})"
            )
        values = sorted(self.sums[i] for i in majority)
        return (values[0] + values[-1]) // 2


@dataclass
class MultiTreeRound:
    """Outcome of one lossless m-tree round."""

    trees: MultiTrees
    sums: List[int]
    verification: MultiTreeVerification
    participants: Set[int]
    true_total: int
    participant_total: int
    slice_transmissions: int

    @property
    def reported(self) -> Optional[int]:
        """Majority value, or None when no majority exists."""
        if not self.verification.accepted:
            return None
        return self.verification.accepted_value


def run_multitree_round(
    topology: Topology,
    readings: Mapping[int, int],
    tree_count: int,
    *,
    slices: int = 2,
    threshold: int = 5,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
    base_station: int = 0,
    polluters: Optional[Mapping[int, int]] = None,
    trees: Optional[MultiTrees] = None,
    magnitude: Optional[int] = None,
) -> MultiTreeRound:
    """One lossless aggregation round over ``tree_count`` disjoint trees."""
    if slices < 1:
        raise ProtocolError("slices must be >= 1")
    if base_station in readings:
        raise ProtocolError("the base station does not produce a reading")
    generator = rng if rng is not None else np.random.default_rng(seed)
    if trees is None:
        trees = build_multi_trees(
            topology, tree_count, generator, base_station=base_station
        )
    if trees.tree_count != tree_count:
        raise ProtocolError("trees were built with a different tree count")
    window = magnitude
    if window is None:
        largest = max((abs(int(v)) for v in readings.values()), default=0)
        window = max(4, 2 * largest)

    assemblers: Dict[int, Dict[int, SliceAssembler]] = {
        base_station: {
            color: SliceAssembler(base_station) for color in range(tree_count)
        }
    }
    for color in range(tree_count):
        for aggregator in trees.aggregators(color):
            assemblers[aggregator] = {color: SliceAssembler(aggregator)}

    participants: Set[int] = set()
    transmissions = 0
    for node_id in sorted(readings):
        role = trees.role_of(node_id)
        candidate_lists: List[List[int]] = []
        feasible = True
        for color in range(tree_count):
            options = set(trees.heard_aggregators(node_id, color))
            options.discard(node_id)
            needed = slices - 1 if role.color == color else slices
            if len(options) < needed:
                feasible = False
                break
            candidate_lists.append(sorted(options))
        if not feasible:
            continue
        participants.add(node_id)
        for color in range(tree_count):
            cut = slice_value(
                int(readings[node_id]), slices, generator, magnitude=window
            )
            includes_self = role.color == color
            if includes_self:
                assemblers[node_id][color].keep(cut[0])
                remote_pieces = cut[1:]
            else:
                remote_pieces = cut
            options = candidate_lists[color]
            picked = generator.choice(
                len(options), size=len(remote_pieces), replace=False
            )
            for piece, index in zip(remote_pieces, sorted(picked)):
                assemblers[options[int(index)]][color].receive(node_id, piece)
                transmissions += 1

    pollution = dict(polluters) if polluters else {}
    sums: List[int] = []
    for color in range(tree_count):
        total = assemblers[base_station][color].assembled_value()
        for aggregator in trees.aggregators(color):
            total += assemblers[aggregator][color].assembled_value()
        for polluter, offset in pollution.items():
            if trees.role_of(polluter).color == color:
                total += int(offset)
        sums.append(total)

    verification = MultiTreeVerification(sums=sums, threshold=threshold)
    return MultiTreeRound(
        trees=trees,
        sums=sums,
        verification=verification,
        participants=participants,
        true_total=sum(int(v) for v in readings.values()),
        participant_total=sum(int(readings[i]) for i in participants),
        slice_transmissions=transmissions,
    )


def multitree_isolation_probability(degree: int, tree_count: int) -> float:
    """P(a degree-d node misses at least one of the m colours).

    Generalises Equation 9 with uniform colour probability ``1/m``:
    ``1 - Π_c (1 - (1 - 1/m)^d)`` = ``1 - (1 - (1-1/m)^d)^m``.
    """
    if tree_count < 2:
        raise AnalysisError("tree_count must be >= 2")
    if degree < 0:
        raise AnalysisError("degree must be >= 0")
    miss_one = (1.0 - 1.0 / tree_count) ** degree
    return 1.0 - (1.0 - miss_one) ** tree_count


def multitree_messages_per_node(tree_count: int, slices: int) -> int:
    """HELLO + (m*l - 1) slices + result = m*l + 1 messages.

    Reduces to the paper's ``2l + 1`` at m = 2.
    """
    if tree_count < 2 or slices < 1:
        raise AnalysisError("need m >= 2 and l >= 1")
    return tree_count * slices + 1
