"""Integrity verification at the base station (Phase III acceptance).

The base station accepts a round iff the two trees' results agree
within ``Th`` (Section III-D): ``|S_b - S_r| <= Th`` tolerates benign
wireless losses while any pollution on one tree drives the difference
far past it.  On persistent rejection (a DoS-style polluter), the base
station localises the malicious node by re-running the aggregation on
bisected participant subsets — "intelligently selecting a different
portion of the sensors to participate at each round" — which isolates a
single non-colluding polluter in O(log N) rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from ..errors import IntegrityError, ProtocolError

__all__ = ["VerificationResult", "IntegrityChecker", "PolluterLocalizer"]


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of comparing the two trees' aggregates."""

    s_red: int
    s_blue: int
    threshold: int

    @property
    def difference(self) -> int:
        """``|S_b - S_r|``."""
        return abs(self.s_blue - self.s_red)

    @property
    def accepted(self) -> bool:
        """True when the difference is within the tolerance ``Th``."""
        return self.difference <= self.threshold

    @property
    def accepted_value(self) -> int:
        """The value the base station reports when it accepts.

        The two trees may differ by a few units under loss; we follow
        the natural choice of averaging them (rounding toward red on
        ties keeps the result deterministic).
        """
        if not self.accepted:
            raise IntegrityError(
                f"result rejected: |{self.s_blue} - {self.s_red}| = "
                f"{self.difference} > Th = {self.threshold}"
            )
        return (self.s_red + self.s_blue) // 2


class IntegrityChecker:
    """The base station's acceptance rule."""

    def __init__(self, threshold: int):
        if threshold < 0:
            raise ProtocolError("threshold must be >= 0")
        self.threshold = threshold
        self.history: List[VerificationResult] = []

    def verify(self, s_red: int, s_blue: int) -> VerificationResult:
        """Compare the two tree results; record and return the outcome."""
        result = VerificationResult(
            s_red=int(s_red), s_blue=int(s_blue), threshold=self.threshold
        )
        self.history.append(result)
        return result

    @property
    def rejection_streak(self) -> int:
        """Consecutive rejections at the end of the history."""
        streak = 0
        for result in reversed(self.history):
            if result.accepted:
                break
            streak += 1
        return streak


class PolluterLocalizer:
    """Bisection search for a single non-colluding polluter.

    Usage: repeatedly take :meth:`next_probe` (the subset of suspects to
    include in the next aggregation round), run the round with only
    those suspects participating, and feed whether the round was
    polluted (rejected) back via :meth:`report`.  When
    :attr:`localized` returns a node id, the polluter is found;
    :attr:`rounds_used` is guaranteed O(log2 N).
    """

    def __init__(self, suspects: Iterable[int]):
        self._suspects: Set[int] = set(suspects)
        if not self._suspects:
            raise ProtocolError("localizer needs at least one suspect")
        self._probe: Optional[Set[int]] = None
        self.rounds_used = 0

    @property
    def suspects(self) -> Set[int]:
        """Current candidate set."""
        return set(self._suspects)

    @property
    def localized(self) -> Optional[int]:
        """The polluter's id once the candidate set is a singleton."""
        if len(self._suspects) == 1:
            return next(iter(self._suspects))
        return None

    def next_probe(self) -> Set[int]:
        """Return the half of the suspect set to include next round."""
        if self.localized is not None:
            raise ProtocolError("polluter already localized")
        if self._probe is not None:
            raise ProtocolError("previous probe not yet reported")
        ordered = sorted(self._suspects)
        self._probe = set(ordered[: len(ordered) // 2])
        return set(self._probe)

    def report(self, polluted: bool) -> None:
        """Record whether the probe round was polluted (rejected)."""
        if self._probe is None:
            raise ProtocolError("no probe outstanding")
        if polluted:
            self._suspects = set(self._probe)
        else:
            self._suspects -= self._probe
        self._probe = None
        self.rounds_used += 1
        if not self._suspects:
            raise IntegrityError(
                "suspect set emptied: pollution reports were inconsistent "
                "(colluding or intermittent attacker?)"
            )

    def run(self, probe_is_polluted) -> int:
        """Drive the whole search with a callback; returns the polluter.

        ``probe_is_polluted(subset) -> bool`` must run an aggregation
        round restricted to ``subset`` plus the honest rest and report
        whether the base station rejected it.
        """
        while self.localized is None:
            probe = self.next_probe()
            self.report(bool(probe_is_polluted(probe)))
        return self.localized
