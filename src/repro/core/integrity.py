"""Integrity verification at the base station (Phase III acceptance).

The base station accepts a round iff the two trees' results agree
within ``Th`` (Section III-D): ``|S_b - S_r| <= Th`` tolerates benign
wireless losses while any pollution on one tree drives the difference
far past it.  On persistent rejection (a DoS-style polluter), the base
station localises the malicious node by re-running the aggregation on
bisected participant subsets — "intelligently selecting a different
portion of the sensors to participate at each round" — which isolates a
single non-colluding polluter in O(log N) rounds.

Graceful degradation (robustness extension): the bare ``Th`` test
cannot tell a crashed aggregator from a polluting one — both unbalance
the trees.  But *loss* also removes slice pieces from exactly the tree
it damages, and piece counts are reported up the trees alongside the
sums, while *pollution* alters a sum without touching any count.  When
per-tree piece coverage is supplied, the checker scales its tolerance
by the *total* piece deficit across both trees (each missing piece can
shift the tree difference by at most ``piece_slack`` — and the two
trees lose independent pieces, so even count-symmetric loss moves the
sums apart) and classifies the round three ways:

* ``accepted`` — trees agree within ``Th``; report the average.
* ``degraded`` — disagreement is fully explained by the missing
  pieces; report the better-covered tree's sum as a partial estimate,
  with an explicit coverage fraction and confidence.
* ``rejected`` — disagreement exceeds what loss could cause (or the
  claimed loss itself is implausibly large): pollution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from ..errors import IntegrityError, ProtocolError

__all__ = [
    "VerificationResult",
    "DegradationPolicy",
    "IntegrityChecker",
    "PolluterLocalizer",
]


@dataclass(frozen=True)
class DegradationPolicy:
    """How far benign loss may stretch the acceptance threshold.

    ``piece_slack`` bounds the damage of one lost slice piece (random
    pieces are drawn from ``[-magnitude, magnitude]`` and the final
    piece of an ``l``-cut reaches ``|reading| + (l-1) * magnitude``, so
    the runners default to ``max(2, l) * magnitude``).
    ``max_missing_fraction`` caps how much of the two-tree
    piece population may be claimed missing before the round is
    rejected outright: an attacker faking a huge coverage gap to
    launder pollution as loss runs into this cap.
    """

    piece_slack: int
    max_missing_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.piece_slack < 0:
            raise ProtocolError("piece_slack must be >= 0")
        if not 0.0 < self.max_missing_fraction <= 1.0:
            raise ProtocolError("max_missing_fraction must be in (0, 1]")

    def effective_threshold(
        self,
        threshold: int,
        pieces_red: int,
        pieces_blue: int,
        expected_pieces: Optional[int],
    ) -> int:
        """Threshold scaled by the total observed piece deficit.

        Both trees lose pieces *independently*, so even a
        count-symmetric loss (k pieces gone on each side, different
        values) moves the sums apart by up to ``2k * piece_slack``;
        the stretch therefore counts every missing piece on either
        tree, not just the net count asymmetry.  Without an expected
        population only the asymmetry is observable and it degrades to
        that.
        """
        if expected_pieces is None or expected_pieces <= 0:
            missing = abs(int(pieces_red) - int(pieces_blue))
            return threshold + self.piece_slack * missing
        missing = max(expected_pieces - int(pieces_red), 0) + max(
            expected_pieces - int(pieces_blue), 0
        )
        if missing > self.max_missing_fraction * 2 * expected_pieces:
            return threshold  # too much claimed loss: do not stretch
        return threshold + self.piece_slack * missing


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of comparing the two trees' aggregates.

    The base fields implement the paper's bare threshold test; the
    optional piece-coverage fields (filled in loss-tolerant mode) add
    the degraded middle ground between accept and reject.
    """

    s_red: int
    s_blue: int
    threshold: int
    #: threshold after coverage scaling; None means no degradation
    #: context was available (legacy two-way accept/reject).
    effective_threshold: Optional[int] = None
    pieces_red: Optional[int] = None
    pieces_blue: Optional[int] = None
    expected_pieces: Optional[int] = None

    @property
    def difference(self) -> int:
        """``|S_b - S_r|``."""
        return abs(self.s_blue - self.s_red)

    @property
    def accepted(self) -> bool:
        """True when the difference is within the tolerance ``Th``."""
        return self.difference <= self.threshold

    @property
    def missing_pieces(self) -> int:
        """Total piece deficit across both trees (net asymmetry when the
        expected population is unknown — all that is observable then)."""
        if self.pieces_red is None or self.pieces_blue is None:
            return 0
        if self.expected_pieces:
            return max(self.expected_pieces - self.pieces_red, 0) + max(
                self.expected_pieces - self.pieces_blue, 0
            )
        return abs(self.pieces_red - self.pieces_blue)

    @property
    def degraded(self) -> bool:
        """Loss (not pollution) explains the disagreement."""
        if self.accepted or self.effective_threshold is None:
            return False
        return (
            self.effective_threshold > self.threshold
            and self.difference <= self.effective_threshold
        )

    @property
    def rejected(self) -> bool:
        """Neither acceptable nor explainable by reported loss."""
        return not self.accepted and not self.degraded

    @property
    def outcome(self) -> str:
        """``"accepted"``, ``"degraded"``, or ``"rejected"``."""
        if self.accepted:
            return "accepted"
        if self.degraded:
            return "degraded"
        return "rejected"

    @property
    def coverage(self) -> Optional[float]:
        """Worse tree's piece coverage against the expected population."""
        if (
            self.pieces_red is None
            or self.pieces_blue is None
            or not self.expected_pieces
        ):
            return None
        # Fail-over retransmissions can (rarely) double-deliver a
        # subtree, pushing a count past the expectation; clip.
        return min(
            1.0, min(self.pieces_red, self.pieces_blue) / self.expected_pieces
        )

    @property
    def confidence(self) -> float:
        """How much of the piece population backs the reported value.

        1.0 for a clean accept; shrinks with the coverage asymmetry the
        degraded estimate had to paper over; 0.0 on rejection.
        """
        if self.accepted:
            return 1.0
        if not self.degraded:
            return 0.0
        if not self.expected_pieces:
            return 0.5  # degraded with unknown population: low trust
        return max(
            0.0, 1.0 - self.missing_pieces / (2 * self.expected_pieces)
        )

    @property
    def accepted_value(self) -> int:
        """The value the base station reports when it accepts.

        The two trees may differ by a few units under loss; we follow
        the natural choice of averaging them (rounding toward red on
        ties keeps the result deterministic).
        """
        if not self.accepted:
            raise IntegrityError(
                f"result rejected: |{self.s_blue} - {self.s_red}| = "
                f"{self.difference} > Th = {self.threshold}"
            )
        return (self.s_red + self.s_blue) // 2

    @property
    def degraded_estimate(self) -> int:
        """Partial estimate on degradation: the better-covered tree.

        "Better" means *closest to the expected population*, not
        maximal: an end-to-end fail-over can double-deliver a subtree
        (ACK lost after delivery, resent via the backup parent), and an
        inflated count is no more trustworthy than a deficient one.
        With equal (or unknown) coverage the trees average, as in the
        accepted case.
        """
        if self.pieces_red is None or self.pieces_blue is None:
            return (self.s_red + self.s_blue) // 2
        if self.expected_pieces:
            gap_red = abs(self.pieces_red - self.expected_pieces)
            gap_blue = abs(self.pieces_blue - self.expected_pieces)
        else:
            gap_red, gap_blue = -self.pieces_red, -self.pieces_blue
        if gap_red < gap_blue:
            return self.s_red
        if gap_blue < gap_red:
            return self.s_blue
        return (self.s_red + self.s_blue) // 2

    @property
    def report_value(self) -> Optional[int]:
        """What the base station reports: full, partial, or nothing."""
        if self.accepted:
            return self.accepted_value
        if self.degraded:
            return self.degraded_estimate
        return None


class IntegrityChecker:
    """The base station's acceptance rule."""

    def __init__(self, threshold: int):
        if threshold < 0:
            raise ProtocolError("threshold must be >= 0")
        self.threshold = threshold
        self.history: List[VerificationResult] = []

    def verify(
        self,
        s_red: int,
        s_blue: int,
        *,
        pieces_red: Optional[int] = None,
        pieces_blue: Optional[int] = None,
        expected_pieces: Optional[int] = None,
        policy: Optional[DegradationPolicy] = None,
    ) -> VerificationResult:
        """Compare the two tree results; record and return the outcome.

        Without the keyword context this is the paper's bare two-way
        test.  With piece counts and a :class:`DegradationPolicy` the
        result also carries the loss-scaled ``effective_threshold``
        that enables the ``degraded`` outcome.
        """
        effective: Optional[int] = None
        if (
            policy is not None
            and pieces_red is not None
            and pieces_blue is not None
        ):
            effective = policy.effective_threshold(
                self.threshold, pieces_red, pieces_blue, expected_pieces
            )
        result = VerificationResult(
            s_red=int(s_red),
            s_blue=int(s_blue),
            threshold=self.threshold,
            effective_threshold=effective,
            pieces_red=pieces_red,
            pieces_blue=pieces_blue,
            expected_pieces=expected_pieces,
        )
        self.history.append(result)
        return result

    @property
    def rejection_streak(self) -> int:
        """Consecutive rejections at the end of the history.

        Degraded rounds break the streak: their disagreement is
        explained by reported loss, so they are no evidence of a
        polluter and must not trigger the bisection hunt.
        """
        streak = 0
        for result in reversed(self.history):
            if not result.rejected:
                break
            streak += 1
        return streak


class PolluterLocalizer:
    """Bisection search for a single non-colluding polluter.

    Usage: repeatedly take :meth:`next_probe` (the subset of suspects to
    include in the next aggregation round), run the round with only
    those suspects participating, and feed whether the round was
    polluted (rejected) back via :meth:`report`.  When
    :attr:`localized` returns a node id, the polluter is found;
    :attr:`rounds_used` is guaranteed O(log2 N).
    """

    def __init__(self, suspects: Iterable[int]):
        self._suspects: Set[int] = set(suspects)
        if not self._suspects:
            raise ProtocolError("localizer needs at least one suspect")
        self._probe: Optional[Set[int]] = None
        self.rounds_used = 0

    @property
    def suspects(self) -> Set[int]:
        """Current candidate set."""
        return set(self._suspects)

    @property
    def localized(self) -> Optional[int]:
        """The polluter's id once the candidate set is a singleton."""
        if len(self._suspects) == 1:
            return next(iter(self._suspects))
        return None

    def next_probe(self) -> Set[int]:
        """Return the half of the suspect set to include next round."""
        if self.localized is not None:
            raise ProtocolError("polluter already localized")
        if self._probe is not None:
            raise ProtocolError("previous probe not yet reported")
        ordered = sorted(self._suspects)
        self._probe = set(ordered[: len(ordered) // 2])
        return set(self._probe)

    def report(self, polluted: bool) -> None:
        """Record whether the probe round was polluted (rejected)."""
        if self._probe is None:
            raise ProtocolError("no probe outstanding")
        if polluted:
            self._suspects = set(self._probe)
        else:
            self._suspects -= self._probe
        self._probe = None
        self.rounds_used += 1
        if not self._suspects:
            raise IntegrityError(
                "suspect set emptied: pollution reports were inconsistent "
                "(colluding or intermittent attacker?)"
            )

    def run(self, probe_is_polluted) -> int:
        """Drive the whole search with a callback; returns the polluter.

        ``probe_is_polluted(subset) -> bool`` must run an aggregation
        round restricted to ``subset`` plus the honest rest and report
        whether the base station rejected it.
        """
        while self.localized is None:
            probe = self.next_probe()
            self.report(bool(probe_is_polluted(probe)))
        return self.localized
