"""Data slicing and assembling (Phase II primitives).

A sensor hides its reading ``d(i)`` by cutting it into ``l`` integer
pieces that sum *exactly* to ``d(i)`` (Section III-C).  Two independent
cuts are made — one scattered to red aggregators, one to blue — so each
tree reconstructs the full total.  Because arithmetic is integer, no
precision is lost, which is what lets iPDA report exact aggregates
(the paper's "Accuracy" design goal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ProtocolError
from ..sim.messages import TreeColor

__all__ = [
    "slice_value",
    "SlicePlan",
    "plan_slices",
    "PlannedSlice",
    "schedule_fanout",
    "SliceAssembler",
]


def slice_value(
    value: int,
    pieces: int,
    rng: np.random.Generator,
    *,
    magnitude: int = 1_000_000,
) -> List[int]:
    """Cut ``value`` into ``pieces`` random integers summing to ``value``.

    The first ``pieces - 1`` components are uniform on
    ``[-magnitude, magnitude]``; the last makes the sum exact.  With
    ``pieces == 1`` the "cut" is the value itself (the l = 1 series of
    the evaluation, i.e. no privacy).
    """
    if pieces < 1:
        raise ProtocolError("cannot slice into fewer than 1 piece")
    if magnitude < 1:
        raise ProtocolError("magnitude must be >= 1")
    if pieces == 1:
        return [int(value)]
    randoms = [
        _uniform_int(rng, -magnitude, magnitude) for _ in range(pieces - 1)
    ]
    last = int(value) - sum(randoms)
    return randoms + [last]


def _uniform_int(rng: np.random.Generator, low: int, high: int) -> int:
    """Uniform integer in ``[low, high]``, supporting arbitrary precision.

    numpy generators cap at 64 bits; larger windows (power-mean
    components are big Python ints) are composed from 32-bit chunks with
    an 8-bit rejection margin, which makes the modulo bias negligible
    for simulation purposes.
    """
    span = high - low + 1
    if span <= (1 << 62):
        return int(rng.integers(low, high + 1))
    bits = span.bit_length() + 8
    chunks = (bits + 31) // 32
    value = 0
    for _ in range(chunks):
        value = (value << 32) | int(rng.integers(0, 1 << 32))
    return low + value % span


@dataclass
class SlicePlan:
    """Where one node's reading goes, for one colour.

    ``kept`` is the piece retained locally (aggregators keep ``d_ii``;
    pure senders keep nothing and ``kept`` is None).  ``outgoing`` maps
    each selected aggregator to its piece.
    """

    color: TreeColor
    kept: Optional[int]
    outgoing: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def transmission_count(self) -> int:
        """Frames this plan costs on the air."""
        return len(self.outgoing)

    def total(self) -> int:
        """Sum of all pieces — must equal the original reading."""
        total = sum(piece for _target, piece in self.outgoing)
        if self.kept is not None:
            total += self.kept
        return total


def plan_slices(
    node_id: int,
    value: int,
    *,
    own_color: Optional[TreeColor],
    red_candidates: Sequence[int],
    blue_candidates: Sequence[int],
    pieces: int,
    rng: np.random.Generator,
    magnitude: int = 1_000_000,
) -> Dict[TreeColor, SlicePlan]:
    """Build both colour plans for one node, or raise if impossible.

    Implements the selection rule of Section III-C.1: choose ``l`` red
    and ``l`` blue aggregators from the neighbourhood *including itself*
    — an aggregator always selects itself and ``l - 1`` peers of its own
    colour, keeping one piece local.  Candidate lists must not contain
    ``node_id`` itself (self-selection is handled here).

    Raises :class:`ProtocolError` when a colour has fewer than ``l``
    candidates — the node must then sit out (data-loss factor (b) of
    Section IV-B.3).
    """
    plans: Dict[TreeColor, SlicePlan] = {}
    for color, candidates in (
        (TreeColor.RED, list(red_candidates)),
        (TreeColor.BLUE, list(blue_candidates)),
    ):
        if node_id in candidates:
            raise ProtocolError(
                f"candidate list for {color.value} must exclude node {node_id}"
            )
        includes_self = own_color is color
        remote_needed = pieces - 1 if includes_self else pieces
        if len(candidates) < remote_needed:
            raise ProtocolError(
                f"node {node_id} has only {len(candidates)} {color.value} "
                f"aggregator(s) in range but needs {remote_needed}"
            )
        chosen = _choose(candidates, remote_needed, rng)
        cut = slice_value(value, pieces, rng, magnitude=magnitude)
        if includes_self:
            kept: Optional[int] = cut[0]
            outgoing = list(zip(chosen, cut[1:]))
        else:
            kept = None
            outgoing = list(zip(chosen, cut))
        plans[color] = SlicePlan(color=color, kept=kept, outgoing=outgoing)
    return plans


@dataclass(frozen=True)
class PlannedSlice:
    """One scheduled slice transmission of a node's two-colour fan-out.

    ``seq`` is the wire sequence number the send will carry — assigned
    here, ahead of time, so the whole fan-out can be sealed in one
    batched cipher pass.
    """

    color: TreeColor
    target: int
    piece: int
    delay: float
    seq: int


def schedule_fanout(
    plans: Dict[TreeColor, SlicePlan],
    window: float,
    rng: np.random.Generator,
    *,
    first_seq: int,
) -> List[PlannedSlice]:
    """Draw send delays and pre-assign sequence numbers for a fan-out.

    Delays are drawn in plan iteration order — the same RNG draw order
    the historical per-send path used.  Sequence numbers, however, are
    assigned in *fire* order: the event engine pops equal-time events
    in scheduling order, so a stable sort by delay predicts exactly
    the order the sends will fire in.  The caller can therefore seal
    every ciphertext upfront (see
    :func:`repro.crypto.envelope.seal_batch`) and still put the same
    bytes on the air the lazy path did.

    Entries are returned in scheduling order; callers must schedule
    them in this order for the tie-break prediction to hold.
    """
    drawn: List[Tuple[TreeColor, int, int, float]] = []
    for color, plan in plans.items():
        for target, piece in plan.outgoing:
            drawn.append(
                (color, target, piece, float(rng.uniform(0.0, window)))
            )
    fire_order = sorted(range(len(drawn)), key=lambda i: drawn[i][3])
    seqs = [0] * len(drawn)
    for fire_rank, index in enumerate(fire_order):
        seqs[index] = first_seq + fire_rank
    return [
        PlannedSlice(
            color=color, target=target, piece=piece, delay=delay, seq=seqs[i]
        )
        for i, (color, target, piece, delay) in enumerate(drawn)
    ]


def _choose(
    candidates: Sequence[int], count: int, rng: np.random.Generator
) -> List[int]:
    if count == 0:
        return []
    ordered = sorted(candidates)
    picked = rng.choice(len(ordered), size=count, replace=False)
    return [ordered[int(i)] for i in sorted(picked)]


class SliceAssembler:
    """Collects the slices one aggregator receives in a round.

    After the slicing window closes, :meth:`assembled_value` yields
    ``r(j) = d_jj + sum of received d_ij`` (Section III-C.2), which the
    aggregator then treats as its own reading for Phase III.
    """

    def __init__(self, node_id: int):
        self.node_id = node_id
        self._kept = 0
        self._kept_count = 0
        self._received: List[Tuple[int, int]] = []

    def keep(self, piece: int) -> None:
        """Retain one of this node's own pieces locally (``d_ii``)."""
        self._kept += int(piece)
        self._kept_count += 1

    def receive(self, sender: int, piece: int) -> None:
        """Record a decrypted slice from ``sender``."""
        self._received.append((sender, int(piece)))

    @property
    def received_count(self) -> int:
        """Number of remote slices received so far."""
        return len(self._received)

    @property
    def kept_count(self) -> int:
        """Number of own pieces retained locally."""
        return self._kept_count

    @property
    def piece_count(self) -> int:
        """Total pieces folded into this assembler (kept + received).

        The unit of the graceful-degradation coverage accounting: tree
        sums travel up alongside these counts, so the base station can
        tell loss (sum *and* count shrink together) from pollution
        (sum changes, count does not).
        """
        return self._kept_count + len(self._received)

    def senders(self) -> List[int]:
        """Distinct senders heard from, sorted."""
        return sorted({sender for sender, _piece in self._received})

    def assembled_value(self) -> int:
        """``r(j)``: the sum of the kept piece and all received slices."""
        return self._kept + sum(piece for _sender, piece in self._received)


def exact_sum(values: Iterable[int]) -> int:
    """Reference aggregate: the exact sum of the given readings."""
    return sum(int(v) for v in values)
