"""Multi-round aggregation sessions with self-healing integrity.

Section III-D sketches the base station's operational loop: run
rounds, reject on disagreement, and — when rejections persist (the DoS
pattern) — "intelligently select a different portion of the sensors to
participate in the aggregation at each round, hence locate the
malicious node and exclude it in O(log N) rounds".
:class:`AggregationSession` implements that loop end to end on the
lossless pipeline:

* every round re-elects roles and trees (fresh randomness, as the
  paper's per-query HELLO flood implies);
* compromised nodes (the session's ``compromised`` map) pollute every
  round in which they are participating aggregators;
* after ``hunt_after`` consecutive rejections the session switches into
  hunting mode, bisecting the suspect set with restricted-participation
  rounds until the polluter is isolated, then excludes it permanently
  and resumes normal service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set

import numpy as np

from ..errors import ProtocolError
from ..net.topology import Topology
from ..sim.messages import TreeColor
from .config import IpdaConfig
from .integrity import PolluterLocalizer
from .pipeline import LosslessRound, run_lossless_round
from .trees import build_disjoint_trees

__all__ = ["RoundRecord", "AggregationSession"]


@dataclass
class RoundRecord:
    """One service round as the base station saw it."""

    round_id: int
    accepted: bool
    reported: Optional[int]
    s_red: int
    s_blue: int
    participants: int
    excluded: Set[int] = field(default_factory=set)
    hunt_rounds: int = 0
    newly_excluded: Optional[int] = None
    #: three-way verdict; ``degraded`` means the disagreement was fully
    #: explained by reported loss and a partial estimate was served.
    outcome: str = "accepted"
    #: worse tree's piece coverage (None outside loss-tolerant mode).
    coverage: Optional[float] = None
    confidence: float = 1.0
    crashed: Set[int] = field(default_factory=set)

    @property
    def degraded(self) -> bool:
        """Was a partial (loss-explained) estimate served?"""
        return self.outcome == "degraded"


class AggregationSession:
    """A long-running base-station query service over one deployment.

    Parameters
    ----------
    topology:
        The deployment served.
    config:
        iPDA parameters (l, Th, role mode).
    compromised:
        ``{node_id: offset}`` — nodes under attacker control; each
        pollutes every round it participates in as an aggregator.
    hunt_after:
        Consecutive rejections that trigger the bisection hunt.
    seed:
        Root seed for the session's randomness.
    """

    def __init__(
        self,
        topology: Topology,
        config: Optional[IpdaConfig] = None,
        *,
        compromised: Optional[Mapping[int, int]] = None,
        hunt_after: int = 2,
        seed: int = 0,
        base_station: int = 0,
    ):
        if hunt_after < 1:
            raise ProtocolError("hunt_after must be >= 1")
        self.topology = topology
        self.config = config if config is not None else IpdaConfig()
        self.base_station = base_station
        self.compromised: Dict[int, int] = dict(compromised or {})
        self.hunt_after = hunt_after
        self.excluded: Set[int] = set()
        self.history: List[RoundRecord] = []
        self._rng = np.random.default_rng(seed)
        self._round_id = 0
        self._rejection_streak = 0

    # ------------------------------------------------------------------
    # Public service loop
    # ------------------------------------------------------------------
    def run_round(
        self,
        readings: Mapping[int, int],
        *,
        crashed: Optional[Set[int]] = None,
    ) -> RoundRecord:
        """Serve one query; hunts and excludes on a rejection streak.

        ``crashed`` marks nodes fail-stopped for this round (fault
        injection): they contribute nothing, and slices scattered to
        them are lost.  In loss-tolerant mode such rounds *degrade*
        rather than reject — and degraded rounds do not feed the
        rejection streak, so benign crashes never trigger the polluter
        hunt.
        """
        dead = set(crashed) if crashed else set()
        result = self._aggregate(readings, contributors=None, crashed=dead)
        verification = result.verification
        record = RoundRecord(
            round_id=self._round_id,
            accepted=verification.accepted,
            reported=result.reported,
            s_red=result.s_red,
            s_blue=result.s_blue,
            participants=len(result.participants),
            excluded=set(self.excluded),
            outcome=verification.outcome,
            coverage=verification.coverage,
            confidence=verification.confidence,
            crashed=dead,
        )
        self._round_id += 1
        if not verification.rejected:
            self._rejection_streak = 0
        else:
            self._rejection_streak += 1
            if self._rejection_streak >= self.hunt_after:
                culprit, hunt_rounds = self._hunt(readings, crashed=dead)
                record.hunt_rounds = hunt_rounds
                record.newly_excluded = culprit
                self.excluded.add(culprit)
                self._rejection_streak = 0
        self.history.append(record)
        return record

    def run_rounds(
        self, readings: Mapping[int, int], count: int
    ) -> List[RoundRecord]:
        """Serve ``count`` identical queries (re-randomised each round)."""
        return [self.run_round(readings) for _ in range(count)]

    @property
    def acceptance_rate(self) -> float:
        """Fraction of service rounds accepted so far."""
        if not self.history:
            return 0.0
        accepted = sum(1 for record in self.history if record.accepted)
        return accepted / len(self.history)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _aggregate(
        self,
        readings: Mapping[int, int],
        *,
        contributors: Optional[Set[int]],
        trees=None,
        crashed: Optional[Set[int]] = None,
    ) -> LosslessRound:
        eligible = set(readings) - self.excluded
        if contributors is not None:
            eligible &= contributors
        if trees is None:
            trees = build_disjoint_trees(
                self.topology,
                self.config,
                self._rng,
                base_station=self.base_station,
            )
        active_polluters = {
            node: offset
            for node, offset in self.compromised.items()
            if node in eligible and trees.role_of(node).is_aggregator
        }
        return run_lossless_round(
            self.topology,
            readings,
            self.config,
            rng=self._rng,
            base_station=self.base_station,
            contributors=eligible,
            polluters=active_polluters or None,
            trees=trees,
            crashed=crashed,
        )

    def _hunt(
        self,
        readings: Mapping[int, int],
        *,
        crashed: Optional[Set[int]] = None,
    ):
        """Bisect the participants to isolate the persistent polluter.

        The hunt pins one set of trees for its duration so a suspect's
        aggregator role stays stable across probe rounds.
        """
        trees = build_disjoint_trees(
            self.topology,
            self.config,
            self._rng,
            base_station=self.base_station,
        )
        suspects = (
            trees.aggregators(TreeColor.RED)
            | trees.aggregators(TreeColor.BLUE)
        ) - self.excluded
        if not suspects:
            raise ProtocolError("nothing to hunt: no aggregators")
        localizer = PolluterLocalizer(suspects)

        def probe_is_polluted(probe: Set[int]) -> bool:
            contributors = (set(readings) - suspects) | probe
            result = self._aggregate(
                readings, contributors=contributors, trees=trees,
                crashed=crashed,
            )
            # A degraded probe is loss, not pollution: count only
            # genuine rejections as evidence against the probe half.
            return result.verification.rejected

        culprit = localizer.run(probe_is_polluted)
        return culprit, localizer.rounds_used
