"""Command-line entry point: ``python -m repro`` / ``ipda``.

Runs any paper experiment (or all of them) and prints the resulting
table; ``--csv DIR`` additionally writes one CSV per experiment.

Examples::

    ipda table1
    ipda fig7 --repetitions 5 --seed 3
    ipda all --fast --csv results/
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, List, Optional

from .experiments import (
    ablations,
    collusion_study,
    energy,
    fig1_trees,
    fig4_messages,
    fig5_privacy,
    fig6_threshold,
    fig7_overhead,
    fig8_coverage_accuracy,
    latency,
    table1_density,
)
from .experiments.common import ExperimentTable

__all__ = ["main", "EXPERIMENTS"]

#: Small parameterisations used by ``--fast`` (seconds, not minutes).
_FAST_SIZES = (200, 300, 400)

Runner = Callable[..., ExperimentTable]


def _run_table1(fast: bool, repetitions: Optional[int], seed: int):
    reps = repetitions if repetitions is not None else (3 if fast else 10)
    return table1_density.run(repetitions=reps, seed=seed)


def _run_fig1(fast: bool, repetitions: Optional[int], seed: int):
    return fig1_trees.run(seed=seed)


def _run_fig4(fast: bool, repetitions: Optional[int], seed: int):
    return fig4_messages.run(
        node_count=300 if fast else 500, seed=seed
    )


def _run_fig5(fast: bool, repetitions: Optional[int], seed: int):
    trials = 0 if fast else 20
    return fig5_privacy.run(seed=seed, monte_carlo_trials=trials)


def _run_fig6(fast: bool, repetitions: Optional[int], seed: int):
    reps = repetitions if repetitions is not None else (2 if fast else 5)
    sizes = _FAST_SIZES if fast else fig6_threshold.PAPER_SIZES
    return fig6_threshold.run(sizes, repetitions=reps, seed=seed)


def _run_fig7(fast: bool, repetitions: Optional[int], seed: int):
    reps = repetitions if repetitions is not None else (1 if fast else 3)
    sizes = _FAST_SIZES if fast else fig7_overhead.PAPER_SIZES
    return fig7_overhead.run(sizes, repetitions=reps, seed=seed)


def _run_fig8(fast: bool, repetitions: Optional[int], seed: int):
    reps = repetitions if repetitions is not None else (1 if fast else 3)
    sizes = _FAST_SIZES if fast else fig8_coverage_accuracy.PAPER_SIZES
    return fig8_coverage_accuracy.run(
        sizes,
        repetitions=reps,
        coverage_repetitions=5 if fast else 20,
        seed=seed,
    )


def _run_ablation(runner: Runner):
    def run(fast: bool, repetitions: Optional[int], seed: int):
        kwargs = {"seed": seed}
        if repetitions is not None:
            kwargs["repetitions"] = repetitions
        elif fast:
            kwargs["repetitions"] = 2
        return runner(**kwargs)

    return run


EXPERIMENTS: Dict[str, Callable] = {
    "table1": _run_table1,
    "fig1": _run_fig1,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "ablation-slices": _run_ablation(ablations.run_slices),
    "ablation-budget": _run_ablation(ablations.run_budget),
    "ablation-role-mode": _run_ablation(ablations.run_role_mode),
    "ablation-key-schemes": _run_ablation(ablations.run_key_schemes),
    "ablation-threshold": _run_ablation(ablations.run_threshold),
    "ablation-trees": _run_ablation(ablations.run_tree_count),
    "energy": _run_ablation(energy.run),
    "latency": _run_ablation(latency.run),
    "ablation-collusion": _run_ablation(collusion_study.run),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ipda",
        description=(
            "Reproduce the iPDA paper's tables and figures "
            "(He et al., MILCOM 2008)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smaller sweeps for a quick look (seconds instead of minutes)",
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=None,
        help="override the number of repetitions per data point",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each table as CSV into this directory",
    )
    parser.add_argument(
        "--svg",
        metavar="DIR",
        default=None,
        help="also render figures as SVG into this directory",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.csv:
        os.makedirs(args.csv, exist_ok=True)
    for name in names:
        started = time.time()
        table = EXPERIMENTS[name](args.fast, args.repetitions, args.seed)
        elapsed = time.time() - started
        print(table.to_text())
        print(f"({name} finished in {elapsed:.1f}s)")
        print()
        if args.csv:
            table.write_csv(os.path.join(args.csv, f"{name}.csv"))
        if args.svg:
            from .viz import render_known_figure

            written = render_known_figure(name, table, args.svg)
            if written:
                print(f"(figure written to {written})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
