"""Command-line entry point: ``python -m repro`` / ``ipda``.

Runs any paper experiment (or all of them) and prints the resulting
table; ``--csv DIR`` additionally writes one CSV per experiment.
``--jobs N`` shards the sweep's cells over N worker processes — the
output is byte-identical to a sequential run (see docs/simulator.md).

Examples::

    ipda table1
    ipda fig7 --repetitions 5 --seed 3 --jobs 4
    ipda all --fast --csv results/
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, List, Optional

from .errors import ConfigurationError, ReproError
from .experiments import (
    ablations,
    collusion_study,
    energy,
    fault_sweep,
    fig1_trees,
    fig4_messages,
    fig5_privacy,
    fig6_threshold,
    fig7_overhead,
    fig8_coverage_accuracy,
    latency,
    table1_density,
)
from .experiments.common import ExperimentTable

__all__ = ["main", "EXPERIMENTS"]

#: Small parameterisations used by ``--fast`` (seconds, not minutes).
_FAST_SIZES = (200, 300, 400)

Runner = Callable[..., ExperimentTable]


def _run_table1(fast: bool, repetitions: Optional[int], seed: int,
                jobs: Optional[int] = 1):
    reps = repetitions if repetitions is not None else (3 if fast else 10)
    return table1_density.run(repetitions=reps, seed=seed, jobs=jobs)


def _run_fig1(fast: bool, repetitions: Optional[int], seed: int,
              jobs: Optional[int] = 1):
    return fig1_trees.run(seed=seed, jobs=jobs)


def _run_fig4(fast: bool, repetitions: Optional[int], seed: int,
              jobs: Optional[int] = 1):
    return fig4_messages.run(
        node_count=300 if fast else 500, seed=seed, jobs=jobs
    )


def _run_fig5(fast: bool, repetitions: Optional[int], seed: int,
              jobs: Optional[int] = 1):
    trials = 0 if fast else 20
    return fig5_privacy.run(seed=seed, monte_carlo_trials=trials, jobs=jobs)


def _run_fig6(fast: bool, repetitions: Optional[int], seed: int,
              jobs: Optional[int] = 1):
    reps = repetitions if repetitions is not None else (2 if fast else 5)
    sizes = _FAST_SIZES if fast else fig6_threshold.PAPER_SIZES
    return fig6_threshold.run(sizes, repetitions=reps, seed=seed, jobs=jobs)


def _run_fig7(fast: bool, repetitions: Optional[int], seed: int,
              jobs: Optional[int] = 1):
    reps = repetitions if repetitions is not None else (1 if fast else 3)
    sizes = _FAST_SIZES if fast else fig7_overhead.PAPER_SIZES
    return fig7_overhead.run(sizes, repetitions=reps, seed=seed, jobs=jobs)


def _run_fig8(fast: bool, repetitions: Optional[int], seed: int,
              jobs: Optional[int] = 1):
    reps = repetitions if repetitions is not None else (1 if fast else 3)
    sizes = _FAST_SIZES if fast else fig8_coverage_accuracy.PAPER_SIZES
    return fig8_coverage_accuracy.run(
        sizes,
        repetitions=reps,
        coverage_repetitions=5 if fast else 20,
        seed=seed,
        jobs=jobs,
    )


def _run_fault_sweep(fast: bool, repetitions: Optional[int], seed: int,
                     jobs: Optional[int] = 1):
    reps = repetitions if repetitions is not None else (2 if fast else 5)
    kwargs = {"repetitions": reps, "seed": seed, "jobs": jobs}
    if fast:
        kwargs["crash_fractions"] = (0.0, 0.05)
        kwargs["loss_levels"] = ("none", "light")
    return fault_sweep.run(**kwargs)


def _run_ablation(runner: Runner):
    def run(fast: bool, repetitions: Optional[int], seed: int,
            jobs: Optional[int] = 1):
        kwargs = {"seed": seed, "jobs": jobs}
        if repetitions is not None:
            kwargs["repetitions"] = repetitions
        elif fast:
            kwargs["repetitions"] = 2
        return runner(**kwargs)

    return run


EXPERIMENTS: Dict[str, Callable] = {
    "table1": _run_table1,
    "fig1": _run_fig1,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "ablation-slices": _run_ablation(ablations.run_slices),
    "ablation-budget": _run_ablation(ablations.run_budget),
    "ablation-role-mode": _run_ablation(ablations.run_role_mode),
    "ablation-key-schemes": _run_ablation(ablations.run_key_schemes),
    "ablation-threshold": _run_ablation(ablations.run_threshold),
    "ablation-trees": _run_ablation(ablations.run_tree_count),
    "energy": _run_ablation(energy.run),
    "latency": _run_ablation(latency.run),
    "ablation-collusion": _run_ablation(collusion_study.run),
    "fault-sweep": _run_fault_sweep,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ipda",
        description=(
            "Reproduce the iPDA paper's tables and figures "
            "(He et al., MILCOM 2008)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smaller sweeps for a quick look (seconds instead of minutes)",
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=None,
        help="override the number of repetitions per data point",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help=(
            "worker processes for the sweep (default: all cores); "
            "results are identical for any value"
        ),
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each table as CSV into this directory",
    )
    parser.add_argument(
        "--svg",
        metavar="DIR",
        default=None,
        help="also render figures as SVG into this directory",
    )
    return parser


def _prepare_output_dir(path: str, flag: str) -> None:
    """Create ``path`` if missing; reject paths that aren't directories."""
    if os.path.isdir(path):
        return
    if os.path.exists(path):
        raise ConfigurationError(
            f"{flag} target {path!r} exists and is not a directory"
        )
    os.makedirs(path, exist_ok=True)


def _throughput_line(name: str, table: ExperimentTable,
                     elapsed: float) -> str:
    """Wall-clock report, with sweep shape when the runner provided it."""
    meta = table.meta
    if "cells" in meta:
        return (
            f"({name} finished in {elapsed:.1f}s: {meta['cells']} cells "
            f"on {meta['jobs']} worker(s), "
            f"{meta['cells_per_second']:.1f} cells/s)"
        )
    return f"({name} finished in {elapsed:.1f}s)"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    try:
        if args.csv:
            _prepare_output_dir(args.csv, "--csv")
        if args.svg:
            _prepare_output_dir(args.svg, "--svg")
        for name in names:
            started = time.time()
            table = EXPERIMENTS[name](
                args.fast, args.repetitions, args.seed, args.jobs
            )
            elapsed = time.time() - started
            print(table.to_text())
            print(_throughput_line(name, table, elapsed))
            print()
            if args.csv:
                table.write_csv(os.path.join(args.csv, f"{name}.csv"))
            if args.svg:
                from .viz import render_known_figure

                written = render_known_figure(name, table, args.svg)
                if written:
                    print(f"(figure written to {written})")
    except ReproError as error:
        print(f"ipda: error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
