"""Command-line entry point: ``python -m repro`` / ``ipda``.

Runs any paper experiment (or all of them) and prints the resulting
table; ``--csv DIR`` additionally writes one CSV per experiment (plus a
provenance manifest sidecar), ``--svg DIR`` renders figures.
``--jobs N`` shards the sweep's cells over N worker processes — the
output is byte-identical to a sequential run (see docs/simulator.md).
``--cache``/``--cache-dir`` memoise cells in the content-addressed
experiment store, so a warm re-run does zero simulation work.

Management commands ride alongside the experiment names::

    ipda list                       # registered specs + cell counts
    ipda cache stats|gc|clear       # inspect / trim the cell store
    ipda store verify results/fig7.csv   # prove provenance
    ipda bench --quick --compare BENCH_baseline.json   # perf gate
    ipda fleet worker|status|requeue     # crash-safe work queue ops

Examples::

    ipda table1
    ipda fig7 --repetitions 5 --seed 3 --jobs 4
    ipda all --fast --csv results/ --cache
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, List, Optional

from .errors import ConfigurationError, ReproError
from .experiments import (
    ablations,
    collusion_study,
    energy,
    fault_sweep,
    fig1_trees,
    fig4_messages,
    fig5_privacy,
    fig6_threshold,
    fig7_overhead,
    fig8_coverage_accuracy,
    latency,
    table1_density,
)
from .experiments.common import ExperimentTable

__all__ = ["main", "EXPERIMENTS", "TOOL_COMMANDS"]

#: Small parameterisations used by ``--fast`` (seconds, not minutes).
_FAST_SIZES = (200, 300, 400)

#: First-positional words routed to the management parser instead of
#: the experiment runner.
TOOL_COMMANDS = (
    "bench", "cache", "fleet", "list", "report", "serve", "store", "tune",
)

Runner = Callable[..., ExperimentTable]


def _run_table1(fast: bool, repetitions: Optional[int], seed: int,
                jobs: Optional[int] = 1):
    reps = repetitions if repetitions is not None else (3 if fast else 10)
    return table1_density.run(repetitions=reps, seed=seed, jobs=jobs)


def _run_fig1(fast: bool, repetitions: Optional[int], seed: int,
              jobs: Optional[int] = 1):
    return fig1_trees.run(seed=seed, jobs=jobs)


def _run_fig4(fast: bool, repetitions: Optional[int], seed: int,
              jobs: Optional[int] = 1):
    return fig4_messages.run(
        node_count=300 if fast else 500, seed=seed, jobs=jobs
    )


def _run_fig5(fast: bool, repetitions: Optional[int], seed: int,
              jobs: Optional[int] = 1):
    trials = 0 if fast else 20
    return fig5_privacy.run(seed=seed, monte_carlo_trials=trials, jobs=jobs)


def _run_fig6(fast: bool, repetitions: Optional[int], seed: int,
              jobs: Optional[int] = 1):
    reps = repetitions if repetitions is not None else (2 if fast else 5)
    sizes = _FAST_SIZES if fast else fig6_threshold.PAPER_SIZES
    return fig6_threshold.run(sizes, repetitions=reps, seed=seed, jobs=jobs)


def _run_fig7(fast: bool, repetitions: Optional[int], seed: int,
              jobs: Optional[int] = 1):
    reps = repetitions if repetitions is not None else (1 if fast else 3)
    sizes = _FAST_SIZES if fast else fig7_overhead.PAPER_SIZES
    return fig7_overhead.run(sizes, repetitions=reps, seed=seed, jobs=jobs)


def _run_fig8(fast: bool, repetitions: Optional[int], seed: int,
              jobs: Optional[int] = 1):
    reps = repetitions if repetitions is not None else (1 if fast else 3)
    sizes = _FAST_SIZES if fast else fig8_coverage_accuracy.PAPER_SIZES
    return fig8_coverage_accuracy.run(
        sizes,
        repetitions=reps,
        coverage_repetitions=5 if fast else 20,
        seed=seed,
        jobs=jobs,
    )


def _run_fault_sweep(fast: bool, repetitions: Optional[int], seed: int,
                     jobs: Optional[int] = 1):
    reps = repetitions if repetitions is not None else (2 if fast else 5)
    kwargs = {"repetitions": reps, "seed": seed, "jobs": jobs}
    if fast:
        kwargs["crash_fractions"] = (0.0, 0.05)
        kwargs["loss_levels"] = ("none", "light")
    return fault_sweep.run(**kwargs)


def _run_privacy_suite(fast: bool, repetitions: Optional[int], seed: int,
                       jobs: Optional[int] = 1):
    from .privacy import evaluate as privacy_suite

    kwargs = {"seed": seed, "jobs": jobs}
    if repetitions is not None:
        kwargs["repetitions"] = repetitions
    if fast:
        kwargs["mi_trials"] = 8
        kwargs["disclosure_trials"] = 24
    return privacy_suite.run(**kwargs)


def _run_ablation(runner: Runner):
    def run(fast: bool, repetitions: Optional[int], seed: int,
            jobs: Optional[int] = 1):
        kwargs = {"seed": seed, "jobs": jobs}
        if repetitions is not None:
            kwargs["repetitions"] = repetitions
        elif fast:
            kwargs["repetitions"] = 2
        return runner(**kwargs)

    return run


EXPERIMENTS: Dict[str, Callable] = {
    "table1": _run_table1,
    "fig1": _run_fig1,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "ablation-slices": _run_ablation(ablations.run_slices),
    "ablation-budget": _run_ablation(ablations.run_budget),
    "ablation-role-mode": _run_ablation(ablations.run_role_mode),
    "ablation-key-schemes": _run_ablation(ablations.run_key_schemes),
    "ablation-threshold": _run_ablation(ablations.run_threshold),
    "ablation-trees": _run_ablation(ablations.run_tree_count),
    "energy": _run_ablation(energy.run),
    "latency": _run_ablation(latency.run),
    "ablation-collusion": _run_ablation(collusion_study.run),
    "fault-sweep": _run_fault_sweep,
    "privacy-suite": _run_privacy_suite,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ipda",
        description=(
            "Reproduce the iPDA paper's tables and figures "
            "(He et al., MILCOM 2008)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smaller sweeps for a quick look (seconds instead of minutes)",
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=None,
        help="override the number of repetitions per data point",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help=(
            "worker processes for the sweep (default: all cores); "
            "results are identical for any value"
        ),
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help=(
            "also write each table as CSV into this directory "
            "(plus a .manifest.json provenance sidecar)"
        ),
    )
    parser.add_argument(
        "--svg",
        metavar="DIR",
        default=None,
        help="also render figures as SVG into this directory",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help=(
            "memoise cells in the experiment store "
            "($REPRO_CACHE_DIR or ~/.cache/repro-store); warm re-runs "
            "skip all simulation work with byte-identical output"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the cell cache even when --cache/--cache-dir is given",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="cell-store location (implies --cache)",
    )
    parser.add_argument(
        "--queue",
        metavar="DIR",
        default=None,
        help=(
            "run the sweep through a crash-safe fleet work queue at DIR: "
            "cells become lease tickets, SIGKILLed workers and driver "
            "restarts are survived, and a resumed run re-runs only the "
            "cells that were in flight (results are cached in DIR/store "
            "unless --cache-dir names another store; add external "
            "workers with 'ipda fleet worker --queue DIR')"
        ),
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "soft per-cell deadline: a cell running longer counts as a "
            "failure and is retried (fleet mode) or aborts the run "
            "after repeated strikes"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "write a structured repro-run/1 JSON run report (per-phase "
            "wall time plus engine/radio/MAC/store counters; pretty-print "
            "it with 'ipda report PATH')"
        ),
    )
    parser.add_argument(
        "--metrics-events",
        metavar="PATH",
        default=None,
        help="also write the phase event stream as JSONL",
    )
    return parser


def _prepare_output_dir(path: str, flag: str) -> None:
    """Create ``path`` if missing; reject paths that aren't directories."""
    if os.path.isdir(path):
        return
    if os.path.exists(path):
        raise ConfigurationError(
            f"{flag} target {path!r} exists and is not a directory"
        )
    os.makedirs(path, exist_ok=True)


def _throughput_line(name: str, table: ExperimentTable,
                     elapsed: float) -> str:
    """Wall-clock report, with sweep shape when the runner provided it.

    Cache behaviour at both layers rides along: the per-worker
    deployment LRU (``deploy-cache h/m``) and, when a cell store was
    attached, the content-addressed store (``store h/m``).
    """
    meta = table.meta
    if "cells" not in meta:
        return f"({name} finished in {elapsed:.1f}s)"
    parts = [
        f"{name} finished in {elapsed:.1f}s: {meta['cells']} cells "
        f"on {meta['jobs']} worker(s), "
        f"{meta['cells_per_second']:.1f} cells/s"
    ]
    if "deploy_cache_hits" in meta:
        parts.append(
            f"deploy-cache {meta['deploy_cache_hits']}/"
            f"{meta['deploy_cache_misses']} hit/miss"
        )
    if "cache_hits" in meta:
        parts.append(
            f"store {meta['cache_hits']}/{meta['cache_misses']} hit/miss"
        )
    if "fleet_queue" in meta:
        parts.append(f"fleet queue {meta['fleet_queue']}")
    return "(" + ", ".join(parts) + ")"


def _resolve_cli_cache(args):
    """Build the CellStore the run loop installs as the default, or None."""
    if args.no_cache:
        return None
    if not (args.cache or args.cache_dir):
        return None
    from .store import CellStore

    root = os.path.expanduser(args.cache_dir) if args.cache_dir else None
    return CellStore(root)


def _write_artifacts(name: str, table: ExperimentTable, args) -> List[str]:
    """Write CSV/SVG (+ manifests) for one finished experiment."""
    from .store.manifest import write_manifest

    lines: List[str] = []
    if args.csv:
        csv_path = os.path.join(args.csv, f"{name}.csv")
        table.write_csv(csv_path)
        write_manifest(csv_path, table)
    if args.svg:
        from .viz import render_known_figure

        written = render_known_figure(name, table, args.svg)
        if written:
            write_manifest(written, table)
            lines.append(f"(figure written to {written})")
    return lines


def _experiment_main(args) -> int:
    names = (
        sorted(EXPERIMENTS) if args.experiment == "all"
        else [args.experiment]
    )
    from . import runner as runner_module
    from .store.manifest import refuse_clobber

    if args.csv:
        _prepare_output_dir(args.csv, "--csv")
    if args.svg:
        _prepare_output_dir(args.svg, "--svg")
    # Fail before any experiment runs if a sidecar slot is occupied by
    # an unrelated user file (mirrors the directory-collision check).
    for name in names:
        if args.csv:
            refuse_clobber(os.path.join(args.csv, f"{name}.csv"))
        if args.svg:
            refuse_clobber(os.path.join(args.svg, f"{name}.svg"))
    from .obs import MetricsRegistry, using_registry

    store = _resolve_cli_cache(args)
    fleet_queue = None
    if args.queue:
        from .fleet import FleetQueue

        fleet_queue = FleetQueue(args.queue)
        if store is None and not args.no_cache:
            from .store import CellStore

            store = CellStore(os.path.join(fleet_queue.root, "store"))
    previous = runner_module.set_default_cache(store)
    previous_fleet = runner_module.set_default_fleet(fleet_queue)
    previous_timeout = runner_module.set_default_cell_timeout(
        args.cell_timeout
    )
    capture_events = bool(args.metrics_events)
    report_entries: List[dict] = []
    events: List[dict] = []
    try:
        for name in names:
            registry = MetricsRegistry(capture_events=capture_events)
            started = time.time()
            with using_registry(registry):
                table = EXPERIMENTS[name](
                    args.fast, args.repetitions, args.seed, args.jobs
                )
            elapsed = time.time() - started
            print(table.to_text())
            print(_throughput_line(name, table, elapsed))
            print()
            for line in _write_artifacts(name, table, args):
                print(line)
            report_entries.append(
                _report_entry(name, table, elapsed, registry)
            )
            if capture_events:
                for event in registry.events:
                    events.append(dict(event, experiment=name))
                # One synthetic summary event per finished experiment so
                # 'report --follow' can render live counter tables from
                # the JSONL stream alone.
                events.append(
                    {
                        "event": "counters",
                        "experiment": name,
                        "counters": registry.snapshot()["counters"],
                    }
                )
    finally:
        runner_module.set_default_cache(previous)
        runner_module.set_default_fleet(previous_fleet)
        runner_module.set_default_cell_timeout(previous_timeout)
    _write_run_report(args, report_entries, events)
    return 0


def _report_entry(name, table, elapsed, registry) -> dict:
    """One ``experiments[]`` entry of the repro-run/1 report."""
    meta = table.meta
    entry = {
        "name": name,
        "elapsed_seconds": round(elapsed, 6),
        "metrics": registry.snapshot(),
    }
    for key in (
        "cells",
        "jobs",
        "cells_per_second",
        "shard_cells",
        "deploy_cache_hits",
        "deploy_cache_misses",
        "cache_hits",
        "cache_misses",
    ):
        if key in meta:
            entry[key] = meta[key]
    return entry


def _write_run_report(args, report_entries, events) -> None:
    if not (args.metrics_out or args.metrics_events):
        return
    from .obs import build_run_report, write_events_jsonl, write_run_report

    report = build_run_report(
        report_entries, argv=[args.experiment] + _report_argv(args)
    )
    if args.metrics_out:
        path = write_run_report(report, args.metrics_out)
        print(f"(run report written to {path})")
    if args.metrics_events:
        path = write_events_jsonl(events, args.metrics_events)
        print(f"(phase events written to {path})")


def _report_argv(args) -> List[str]:
    """Reconstruct the option part of argv for report provenance."""
    argv: List[str] = []
    if args.fast:
        argv.append("--fast")
    if args.repetitions is not None:
        argv += ["--repetitions", str(args.repetitions)]
    if args.seed:
        argv += ["--seed", str(args.seed)]
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if args.queue:
        argv += ["--queue", args.queue]
    if args.cell_timeout is not None:
        argv += ["--cell-timeout", str(args.cell_timeout)]
    return argv


# ----------------------------------------------------------------------
# Management commands: list / cache / store
# ----------------------------------------------------------------------
def _build_tools_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ipda", description="Experiment-store management commands."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list", help="print every registered spec with its cell count"
    )

    cache = sub.add_parser("cache", help="inspect or trim the cell store")
    cache_sub = cache.add_subparsers(dest="action", required=True)
    for action, help_text in (
        ("stats", "object count and bytes, total and per experiment"),
        ("gc", "evict least-recently-used objects down to the size cap"),
        ("clear", "delete every cached object"),
    ):
        action_parser = cache_sub.add_parser(action, help=help_text)
        action_parser.add_argument(
            "--cache-dir", metavar="DIR", default=None,
            help="cell-store location (default: $REPRO_CACHE_DIR "
                 "or ~/.cache/repro-store)",
        )
        if action == "gc":
            action_parser.add_argument(
                "--max-bytes", type=int, default=None,
                help="override the size cap for this collection",
            )

    store = sub.add_parser(
        "store", help="provenance operations on results/ artifacts"
    )
    store_sub = store.add_subparsers(dest="action", required=True)
    verify = store_sub.add_parser(
        "verify",
        help="prove an artifact is reproducible from the current tree",
    )
    verify.add_argument(
        "artifacts", nargs="+", metavar="ARTIFACT",
        help="artifact path(s) with .manifest.json sidecars",
    )

    fleet = sub.add_parser(
        "fleet",
        help="operate the crash-safe fleet work queue (see --queue)",
    )
    fleet_sub = fleet.add_subparsers(dest="action", required=True)
    worker = fleet_sub.add_parser(
        "worker",
        help=(
            "run one claim/run/publish worker loop against a queue; "
            "start any number on any host sharing the filesystem"
        ),
    )
    worker.add_argument(
        "--queue", metavar="DIR", required=True,
        help="queue directory (as passed to an experiment's --queue)",
    )
    worker.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="result store (default: <queue>/store)",
    )
    worker.add_argument(
        "--worker-id", metavar="ID", default=None,
        help="lease owner name (default: hostname:pid)",
    )
    worker.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="exit after completing N cells",
    )
    worker.add_argument(
        "--idle-exit", type=float, default=None, metavar="SECONDS",
        help=(
            "keep polling an empty queue this long before exiting "
            "(default: exit as soon as the queue is drained)"
        ),
    )
    worker.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help=(
            "stop renewing a cell's lease after this long so the "
            "fleet can retry it elsewhere (soft timeout)"
        ),
    )
    worker.add_argument(
        "--lease-seconds", type=float, default=None, metavar="SECONDS",
        help="lease duration for claims made by this worker",
    )
    status = fleet_sub.add_parser(
        "status",
        help="queue counts, journal health, and the quarantine report",
    )
    status.add_argument(
        "--queue", metavar="DIR", required=True, help="queue directory"
    )
    status.add_argument(
        "--json", action="store_true",
        help="machine-readable status (used by the CI chaos gate)",
    )
    requeue = fleet_sub.add_parser(
        "requeue",
        help="move quarantined cells back to pending with a clean slate",
    )
    requeue.add_argument(
        "--queue", metavar="DIR", required=True, help="queue directory"
    )
    requeue.add_argument(
        "digests", nargs="*", metavar="DIGEST",
        help="specific cell digests (default: everything in quarantine)",
    )

    report = sub.add_parser(
        "report",
        help=(
            "pretty-print a run (repro-run/1), service bench "
            "(repro-serve/1), or privacy/tune (repro-privacy/1) report; "
            "--follow live-tails a --metrics-events JSONL instead"
        ),
    )
    report.add_argument(
        "path", metavar="REPORT",
        help=(
            "path to a report written with --metrics-out, serve/tune "
            "--output, or (with --follow) a --metrics-events JSONL file"
        ),
    )
    report.add_argument(
        "--json", action="store_true",
        help="dump the validated report as canonical JSON instead",
    )
    report.add_argument(
        "--follow", action="store_true",
        help=(
            "treat REPORT as a --metrics-events JSONL stream and "
            "live-tail it, re-rendering the counter/phase table on "
            "each flush (waits for the file to appear; Ctrl-C stops)"
        ),
    )
    report.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="poll interval for --follow (default: 0.5)",
    )
    report.add_argument(
        "--max-updates", type=int, default=None, metavar="N",
        help="stop --follow after N re-renders (default: follow forever)",
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "long-running aggregation service over a persistent fleet; "
            "--bench runs the deterministic load generator"
        ),
    )
    serve.add_argument(
        "--bench", action="store_true",
        help="closed-loop virtual-time load generator (deterministic per "
             "seed); without it a live asyncio service handles the same "
             "load in wall time",
    )
    serve.add_argument(
        "--duration", type=float, default=10.0, metavar="SECONDS",
        help="service seconds of offered arrivals (default: 10)",
    )
    serve.add_argument(
        "--qps", type=float, default=50.0,
        help="target offered load, queries per service second (default: 50)",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="root seed for deployment, readings, and arrivals (default: 0)",
    )
    serve.add_argument(
        "--nodes", type=int, default=200,
        help="deployment size (default: 200, the paper deployment)",
    )
    serve.add_argument(
        "--slices", type=int, default=2,
        help="iPDA slicing factor l (default: 2)",
    )
    serve.add_argument(
        "--threshold", type=int, default=5,
        help="integrity threshold Th (default: 5)",
    )
    serve.add_argument(
        "--robust", action="store_true",
        help="loss-tolerant iPDA with the three-way accept/degrade/reject "
             "verdict (default: paper fire-and-forget)",
    )
    serve.add_argument(
        "--capacity", type=int, default=256,
        help="admission-queue high-water mark; submissions past it are "
             "rejected with backpressure (default: 256)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64,
        help="most queries folded into one dispatch cycle (default: 64)",
    )
    serve.add_argument(
        "--epoch-seconds", type=float, default=0.5,
        help="service seconds one dispatch cycle costs (default: 0.5)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-query deadline; queries older than this when their "
             "cycle starts come back 'expired' (default: none)",
    )
    serve.add_argument(
        "--mix", choices=sorted(_serve_mixes()), default="ipda",
        help="query mix: 'ipda' (pipelined-epoch perf mix) or 'mixed' "
             "(all lanes and kinds) (default: ipda)",
    )
    serve.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="arm faults against the live service, scheduled by epoch: "
             "'crash=<n>@<epoch>[+<k>]' and/or 'loss=<light|heavy>"
             "[@<epoch>]', comma-separated (e.g. 'crash=2@3+4,loss=light')",
    )
    serve.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the repro-serve/1 report JSON here",
    )
    serve.add_argument(
        "--metrics-events", metavar="PATH", default=None,
        help="also write the phase/metric event stream as JSONL",
    )
    serve.add_argument(
        "--json", action="store_true",
        help="print the report as JSON instead of the summary",
    )

    tune = sub.add_parser(
        "tune",
        help=(
            "autotune (l, Th, key scheme, fan-out) for the cheapest "
            "configuration meeting a privacy/overhead/accuracy envelope"
        ),
    )
    tune.add_argument(
        "--min-privacy", type=float, default=0.0, metavar="SCORE",
        help="composite privacy score the winner must reach (default: 0)",
    )
    tune.add_argument(
        "--max-overhead", type=float, default=None, metavar="RATIO",
        help=(
            "cap on the per-node message overhead ratio vs TAG "
            "(the paper's (2l+1)/2 axis; default: unconstrained)"
        ),
    )
    tune.add_argument(
        "--max-accuracy-loss", type=float, default=None, metavar="LOSS",
        help="cap on 1 - mean collected/true (default: unconstrained)",
    )
    tune.add_argument(
        "--quick", action="store_true",
        help=(
            "4-configuration grid with small trial counts "
            "(CI smoke; seconds instead of minutes)"
        ),
    )
    tune.add_argument(
        "--nodes", type=int, default=200,
        help="deployment size (default: 200, the paper deployment)",
    )
    tune.add_argument("--seed", type=int, default=0, help="root seed")
    tune.add_argument(
        "--repetitions", type=int, default=1,
        help="terrain repetitions averaged per candidate (default: 1)",
    )
    tune.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="worker processes (default: all cores)",
    )
    tune.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cell-store location (default: $REPRO_CACHE_DIR "
             "or ~/.cache/repro-store)",
    )
    tune.add_argument(
        "--no-cache", action="store_true",
        help=(
            "re-evaluate every candidate instead of reusing "
            "digest-matched evaluation cells from the store"
        ),
    )
    tune.add_argument(
        "--queue", metavar="DIR", default=None,
        help=(
            "shard candidate evaluations over a fleet work queue at DIR "
            "(see the experiment runner's --queue)"
        ),
    )
    tune.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the repro-privacy/1 tune report JSON here",
    )
    tune.add_argument(
        "--json", action="store_true",
        help="print the report as JSON instead of the summary",
    )

    bench = sub.add_parser(
        "bench",
        help="run hot-path benchmarks, emit BENCH_*.json, gate regressions",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="shorter measurements (CI smoke); workload shape is unchanged",
    )
    bench.add_argument(
        "--only", action="append", metavar="NAME", default=None,
        help="run only this benchmark (repeatable; see --list)",
    )
    bench.add_argument(
        "--list", action="store_true", dest="list_benchmarks",
        help="list available benchmarks and exit",
    )
    bench.add_argument(
        "--repeats", type=int, default=None,
        help="best-of repeats per benchmark (default: 3, or 1 with --quick)",
    )
    bench.add_argument(
        "--output", metavar="PATH", default=None,
        help="report destination: a directory (default BENCH_<ts>.json name) "
             "or an explicit file path (default: current directory)",
    )
    bench.add_argument(
        "--no-write", action="store_true",
        help="do not write a report file (print + compare only)",
    )
    bench.add_argument(
        "--input", metavar="REPORT", default=None,
        help="compare an existing BENCH_*.json instead of running benchmarks",
    )
    bench.add_argument(
        "--compare", metavar="BASELINE", default=None,
        help="compare against this baseline report and gate on regressions",
    )
    bench.add_argument(
        "--fail-above", type=float, default=25.0, metavar="PCT",
        help="tolerated throughput drop in percent before the gate fails "
             "(default: 25)",
    )
    return parser


def _open_store(cache_dir: Optional[str]):
    from .store import CellStore

    root = os.path.expanduser(cache_dir) if cache_dir else None
    return CellStore(root)


def _format_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{int(count)} B"  # pragma: no cover - unreachable


def _tools_list() -> int:
    from .runner import available_experiments, get_spec

    names = available_experiments()
    width = max(len(name) for name in names)
    for name in names:
        spec = get_spec(name)
        count = len(spec.cells())
        description = spec.description or "(no description)"
        print(f"{name.ljust(width)}  {count:>5} cells  {description}")
    return 0


def _tools_cache(args) -> int:
    store = _open_store(args.cache_dir)
    if args.action == "stats":
        stats = store.stats()
        print(f"cache dir: {stats.root}")
        print(
            f"objects: {stats.objects} "
            f"({_format_bytes(stats.total_bytes)} of "
            f"{_format_bytes(stats.max_bytes)} cap)"
        )
        for name, (count, nbytes) in stats.per_experiment.items():
            print(f"  {name}: {count} objects, {_format_bytes(nbytes)}")
    elif args.action == "gc":
        evicted, freed = store.gc(args.max_bytes)
        print(
            f"evicted {evicted} object(s), freed {_format_bytes(freed)} "
            f"({store.root})"
        )
    elif args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} object(s) ({store.root})")
    return 0


def _verify_store_root(path: str) -> None:
    """Index health check for a store-root directory argument.

    A crash during an index append leaves a torn final line; loading
    already tolerates it, and verify *repairs* it by rewriting the
    index from its surviving records.
    """
    from .store import CellStore

    store = CellStore(path)
    records, torn = store.verify_index(repair=True)
    if torn:
        print(
            f"{path}: index repaired — kept {records} record(s), "
            f"dropped {torn} torn line(s) (crash during append)"
        )
    else:
        print(f"{path}: index ok ({records} record(s))")


def _tools_store(args) -> int:
    from .store.manifest import verify_artifact

    failures = 0
    for artifact in args.artifacts:
        if os.path.isdir(artifact) and (
            os.path.exists(os.path.join(artifact, "index.jsonl"))
            or os.path.isdir(os.path.join(artifact, "objects"))
        ):
            _verify_store_root(artifact)
            continue
        problems = verify_artifact(artifact)
        if problems:
            failures += 1
            print(f"{artifact}: NOT reproducible from the current tree:")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"{artifact}: verified (digests match the current tree)")
    return 1 if failures else 0


def _tools_fleet(args) -> int:
    from .fleet import FleetQueue

    if args.action == "worker":
        import repro.fleet.chaos  # noqa: F401  (registers chaos-grid)
        from .fleet import run_worker
        from .store import CellStore

        kwargs = {}
        if args.lease_seconds is not None:
            kwargs["lease_seconds"] = args.lease_seconds
        queue = FleetQueue(args.queue, **kwargs)
        store_root = (
            os.path.expanduser(args.cache_dir)
            if args.cache_dir
            else os.path.join(queue.root, "store")
        )
        summary = run_worker(
            queue,
            CellStore(store_root),
            worker_id=args.worker_id,
            max_cells=args.max_cells,
            idle_timeout=args.idle_exit,
            stop_when_drained=args.idle_exit is None,
            cell_timeout=args.cell_timeout,
        )
        print(
            f"worker {summary.worker_id} stopped ({summary.stopped}): "
            f"{summary.cells_done} done, {summary.cells_failed} failed, "
            f"{summary.cells_lost} lost lease(s), "
            f"{summary.claims} claim(s)"
        )
        return 0
    queue = FleetQueue(args.queue)
    if args.action == "status":
        status = queue.status()
        if args.json:
            import json

            print(
                json.dumps(
                    {
                        "root": status.root,
                        "pending": status.pending,
                        "leased": status.leased,
                        "done": status.done,
                        "quarantined": status.quarantined,
                        "journal_entries": status.journal_entries,
                        "journal_torn_lines": status.journal_torn_lines,
                        "quarantine": status.quarantine,
                    },
                    indent=1,
                    sort_keys=True,
                )
            )
            return 0
        print(f"queue: {status.root}")
        print(
            f"pending {status.pending}  leased {status.leased}  "
            f"done {status.done}  quarantined {status.quarantined}"
        )
        journal = f"journal: {status.journal_entries} entries"
        if status.journal_torn_lines:
            journal += (
                f" ({status.journal_torn_lines} torn line(s) tolerated)"
            )
        print(journal)
        for record in status.quarantine:
            cell = record.get("cell", {})
            key = "/".join(str(part) for part in cell.get("key", ()))
            errors = record.get("errors", [])
            last = errors[-1] if errors else {}
            print(
                f"  quarantined {cell.get('experiment', '?')}[{key}"
                f"#{cell.get('rep', '?')}] "
                f"digest={str(record.get('digest', ''))[:12]} "
                f"attempts={record.get('attempts', '?')}: "
                f"{last.get('message', 'unknown error')}"
            )
        return 0
    # requeue
    restored = queue.requeue(args.digests or None)
    print(f"requeued {restored} cell(s) ({queue.root})")
    return 0


def _tools_bench(args) -> int:
    from . import perf

    if args.list_benchmarks:
        descriptions = perf.benchmark_descriptions()
        width = max(len(name) for name in descriptions)
        for name, text in descriptions.items():
            print(f"{name.ljust(width)}  {text}")
        return 0
    repeats = args.repeats
    if repeats is None:
        repeats = 1 if args.quick else 3
    if args.input is not None:
        report = perf.load_report(args.input)
    else:
        from .obs import MetricsRegistry, using_registry

        registry = MetricsRegistry()
        with using_registry(registry):
            results = perf.run_benchmarks(
                args.only, quick=args.quick, repeats=repeats,
                progress=lambda line: print(line, flush=True),
            )
        report = perf.build_report(
            results, quick=args.quick, repeats=repeats,
            metrics=registry.snapshot(),
        )
        if not args.no_write:
            path = perf.write_report(report, args.output)
            print(f"(report written to {path})")
    print(perf.render_report_text(report))
    if args.compare is None:
        return 0
    baseline = perf.load_report(args.compare)
    rows, unmatched, warnings = perf.compare_reports(
        report, baseline, fail_above=args.fail_above
    )
    print(
        perf.render_comparison(
            rows, unmatched, fail_above=args.fail_above, warnings=warnings
        )
    )
    return 1 if any(row.regressed for row in rows) else 0


def _tools_report(args) -> int:
    from .obs import load_run_report, peek_schema, render_run_report

    if args.follow:
        from .obs import follow_events

        try:
            follow_events(
                args.path,
                interval=args.interval,
                max_updates=args.max_updates,
            )
        except KeyboardInterrupt:
            pass
        return 0
    schema = peek_schema(args.path)
    if schema == "repro-serve/1":
        from .serve import load_serve_report, render_serve_report

        report = load_serve_report(args.path)
        renderer = render_serve_report
    elif schema == "repro-privacy/1":
        from .privacy import load_privacy_report, render_privacy_report

        report = load_privacy_report(args.path)
        renderer = render_privacy_report
    else:
        report = load_run_report(args.path)
        renderer = render_run_report
    if args.json:
        import json

        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        print(renderer(report))
    return 0


def _tune_argv(args) -> List[str]:
    """Reconstruct the tune invocation for report provenance."""
    argv = ["tune"]
    if args.quick:
        argv.append("--quick")
    argv += [
        "--min-privacy", str(args.min_privacy),
        "--nodes", str(args.nodes),
        "--seed", str(args.seed),
    ]
    if args.max_overhead is not None:
        argv += ["--max-overhead", str(args.max_overhead)]
    if args.max_accuracy_loss is not None:
        argv += ["--max-accuracy-loss", str(args.max_accuracy_loss)]
    if args.repetitions != 1:
        argv += ["--repetitions", str(args.repetitions)]
    return argv


def _tools_tune(args) -> int:
    from .obs import MetricsRegistry, using_registry
    from .privacy import (
        build_privacy_report,
        render_privacy_report,
        write_privacy_report,
    )
    from .tune import TuneTargets, autotune

    targets = TuneTargets(
        min_privacy=args.min_privacy,
        max_overhead=args.max_overhead,
        max_accuracy_loss=args.max_accuracy_loss,
    )
    # Candidate evaluations are digest-keyed cells, so the store is on
    # by default: an interrupted sweep resumes, a repeated sweep with
    # overlapping grids re-evaluates only the new candidates.
    store = None
    fleet_queue = None
    if args.queue:
        from .fleet import FleetQueue

        fleet_queue = FleetQueue(args.queue)
        if not args.no_cache and args.cache_dir is None:
            from .store import CellStore

            store = CellStore(os.path.join(fleet_queue.root, "store"))
    if store is None and not args.no_cache:
        store = _open_store(args.cache_dir)
    registry = MetricsRegistry()
    started = time.time()
    with using_registry(registry):
        outcome = autotune(
            targets=targets,
            quick=args.quick,
            node_count=args.nodes,
            seed=args.seed,
            repetitions=args.repetitions,
            jobs=args.jobs,
            cache=store,
            queue=fleet_queue,
        )
    elapsed = time.time() - started
    report = build_privacy_report(
        outcome.evaluations,
        kind="tune",
        targets=outcome.targets.to_jsonable(),
        frontier=outcome.frontier,
        winner=outcome.winner,
        baseline=outcome.baseline,
        dominating=outcome.dominating,
        cache={"hits": outcome.cache_hits, "misses": outcome.cache_misses},
        metrics=registry.snapshot(),
        argv=_tune_argv(args),
    )
    if args.json:
        import json

        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        print(render_privacy_report(report))
        print(
            f"({len(outcome.evaluations)} candidate(s) in {elapsed:.1f}s, "
            f"store {outcome.cache_hits}/{outcome.cache_misses} hit/miss)"
        )
    if args.output:
        path = write_privacy_report(report, args.output)
        print(f"(tune report written to {path})")
    if outcome.winner is None:
        print(
            "ipda: no configuration meets the target envelope "
            f"({len(outcome.feasible)} feasible of "
            f"{len(outcome.evaluations)})",
            file=sys.stderr,
        )
        return 1
    return 0


def _serve_mixes():
    from .serve.bench import MIXES

    return MIXES


def _serve_argv(args) -> List[str]:
    """Reconstruct the serve invocation for report provenance."""
    argv = ["serve"]
    if args.bench:
        argv.append("--bench")
    argv += [
        "--duration", str(args.duration), "--qps", str(args.qps),
        "--seed", str(args.seed), "--nodes", str(args.nodes),
        "--mix", args.mix,
    ]
    if args.robust:
        argv.append("--robust")
    if args.deadline is not None:
        argv += ["--deadline", str(args.deadline)]
    if args.faults:
        argv += ["--faults", args.faults]
    return argv


def _tools_serve(args) -> int:
    from .obs import MetricsRegistry, write_events_jsonl
    from .serve import (
        BenchConfig,
        FleetConfig,
        ServiceConfig,
        render_serve_report,
        run_bench,
        write_serve_report,
    )

    bench = BenchConfig(
        duration=args.duration,
        qps=args.qps,
        seed=args.seed,
        mix=args.mix,
        deadline=args.deadline,
    )
    fleet_config = FleetConfig(
        node_count=args.nodes,
        seed=args.seed,
        slices=args.slices,
        threshold=args.threshold,
        robust=args.robust,
    )
    service_config = ServiceConfig(
        capacity=args.capacity,
        max_batch=args.max_batch,
        epoch_seconds=args.epoch_seconds,
    )
    registry = MetricsRegistry(capture_events=bool(args.metrics_events))
    argv = _serve_argv(args)
    if args.bench:
        report = run_bench(
            bench,
            fleet_config=fleet_config,
            service_config=service_config,
            fault_spec=args.faults,
            argv=argv,
            registry=registry,
        )
    else:
        report = _serve_live(
            bench, fleet_config, service_config, args.faults, registry, argv
        )
    if args.json:
        import json

        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        print(render_serve_report(report))
    if args.output:
        path = write_serve_report(report, args.output)
        print(f"(serve report written to {path})")
    if args.metrics_events:
        path = write_events_jsonl(list(registry.events), args.metrics_events)
        print(f"(metric events written to {path})")
    return 0


def _serve_live(
    bench, fleet_config, service_config, fault_spec, registry, argv
):
    """Drive the asyncio service with the bench's arrival schedule.

    Same Poisson arrivals, but paced on the wall clock through the
    live :class:`~repro.serve.AggregationService`; the report's SLO
    figures are therefore real wall-time latencies and NOT expected to
    be deterministic across runs.
    """
    import asyncio

    from .errors import ServiceOverloadError
    from .obs import using_registry
    from .serve import (
        AggregationQuery,
        AggregationService,
        ServiceCore,
        ServiceFaultSchedule,
        build_serve_report,
        parse_fault_spec,
    )
    from .serve.bench import arrival_schedule

    faults = (
        parse_fault_spec(fault_spec) if fault_spec else ServiceFaultSchedule()
    )
    schedule = arrival_schedule(bench)
    results: List[object] = []
    rejected = 0

    async def drive():
        nonlocal rejected
        core = ServiceCore(
            config=service_config, fleet_config=fleet_config, faults=faults
        )
        wall_start = time.perf_counter()
        async with AggregationService(core) as service:
            construction_wall = time.perf_counter() - wall_start
            loop = asyncio.get_running_loop()
            epoch_zero = loop.time()

            async def submit_at(offset, kind, protocol, deadline):
                nonlocal rejected
                await asyncio.sleep(
                    max(0.0, epoch_zero + offset - loop.time())
                )
                query = AggregationQuery(
                    kind, protocol=protocol, deadline_seconds=deadline
                )
                try:
                    results.append(await service.submit(query))
                except ServiceOverloadError:
                    rejected += 1

            serve_start = time.perf_counter()
            await asyncio.gather(
                *(submit_at(*arrival) for arrival in schedule)
            )
        return core, construction_wall, time.perf_counter() - serve_start

    with using_registry(registry):
        core, construction_wall, serve_wall = asyncio.run(drive())
    return build_serve_report(
        bench,
        fleet_config,
        service_config,
        results=results,
        rejected=rejected,
        offered=len(schedule),
        snapshot=registry.snapshot(),
        construction_bytes=core.fleet.construction_bytes,
        epochs_served=core.fleet.epoch,
        construction_wall=construction_wall,
        serve_wall=serve_wall,
        fault_spec=fault_spec,
        argv=argv,
    )


def _tools_main(argv: List[str]) -> int:
    args = _build_tools_parser().parse_args(argv)
    if args.command == "list":
        return _tools_list()
    if args.command == "cache":
        return _tools_cache(args)
    if args.command == "bench":
        return _tools_bench(args)
    if args.command == "fleet":
        return _tools_fleet(args)
    if args.command == "report":
        return _tools_report(args)
    if args.command == "serve":
        return _tools_serve(args)
    if args.command == "tune":
        return _tools_tune(args)
    return _tools_store(args)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    try:
        if argv and argv[0] in TOOL_COMMANDS:
            return _tools_main(argv)
        return _experiment_main(_build_parser().parse_args(argv))
    except ReproError as error:
        print(f"ipda: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
