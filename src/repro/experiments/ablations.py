"""Ablation studies beyond the paper's figures.

Each ablation isolates one design choice DESIGN.md calls out:

* ``run_slices`` — the privacy/overhead/accuracy trade-off of ``l``;
* ``run_budget`` — the aggregator-budget ``k`` of the adaptive mode
  (coverage vs. number of aggregators);
* ``run_role_mode`` — adaptive Equation 1 vs. fixed Equation 2;
* ``run_key_schemes`` — insider exposure under pairwise keys vs.
  Eschenauer-Gligor predistribution vs. a global key;
* ``run_threshold`` — Th sensitivity: benign-loss false rejections vs.
  smallest detectable pollution.

Seeding convention: variants of one ablation share the deployment (and,
where the comparison is variance-reduced by common random numbers, the
tree-construction stream) at the same repetition, but anything a
variant consumes independently is derived from its own labels via
:func:`repro.rng.derive_seed`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.overhead import overhead_ratio
from ..analysis.privacy import average_disclosure_probability
from ..attacks.collusion import coalition_disclosure, random_coalition
from ..core.config import IpdaConfig, RoleMode
from ..core.pipeline import run_lossless_round
from ..core.trees import build_disjoint_trees
from ..crypto.keys import (
    GlobalKeyScheme,
    PairwiseKeyScheme,
    RandomPredistributionScheme,
)
from ..protocols.ipda import IpdaProtocol
from ..rng import RngStreams, derive_seed
from ..sim.messages import TreeColor
from ..workloads.readings import count_readings
from .common import (
    Cell,
    CellExperiment,
    ExperimentTable,
    cached_deployment,
    grouped,
    make_cell,
    mean_std,
)

__all__ = [
    "run_slices",
    "run_budget",
    "run_role_mode",
    "run_key_schemes",
    "run_threshold",
    "run_tree_count",
    "SPECS",
]


# --------------------------------------------------------------------------
# l sweep
# --------------------------------------------------------------------------

SLICES_EXPERIMENT = "ablation-slices"


def slices_cells(
    *,
    node_count: int = 400,
    slice_counts: Sequence[int] = (1, 2, 3, 4),
    px: float = 0.05,
    repetitions: int = 3,
    seed: int = 0,
) -> List[Cell]:
    return [
        make_cell(
            SLICES_EXPERIMENT,
            (int(slices),),
            rep,
            node_count=int(node_count),
            px=float(px),
            seed=int(seed),
        )
        for slices in slice_counts
        for rep in range(repetitions)
    ]


def slices_run_cell(cell: Cell) -> Tuple[float, float, float]:
    """One iPDA round at this l; returns (pdisclose, accuracy, part)."""
    (slices,) = cell.key
    seed = cell.param("seed")
    node_count = cell.param("node_count")
    topology = cached_deployment(
        node_count,
        seed=derive_seed(seed, SLICES_EXPERIMENT, node_count, "deploy"),
    )
    readings = count_readings(topology)
    outcome = IpdaProtocol(IpdaConfig(slices=slices)).run_round(
        topology,
        readings,
        streams=RngStreams(
            derive_seed(seed, SLICES_EXPERIMENT, node_count, cell.rep, slices)
        ),
        round_id=cell.rep,
    )
    collected = (outcome.s_red + outcome.s_blue) / 2
    return (
        average_disclosure_probability(topology, cell.param("px"), slices),
        collected / outcome.true_total,
        len(outcome.participants) / (node_count - 1),
    )


def slices_reduce(
    cells: Sequence[Cell], results: Sequence[object]
) -> ExperimentTable:
    table = ExperimentTable(
        name="Ablation: number of slices l",
        columns=[
            "l",
            "analytic_pdisclose",
            "overhead_ratio",
            "accuracy",
            "participation",
        ],
    )
    for key, entries in grouped(cells, results).items():
        (slices,) = key
        table.add_row(
            slices,
            entries[0][1][0],
            overhead_ratio(slices),
            mean_std([result[1] for _cell, result in entries])[0],
            mean_std([result[2] for _cell, result in entries])[0],
        )
    px = cells[0].param("px") if cells else 0.05
    table.add_note(
        f"privacy at px={px}; the paper recommends l=2 as the knee "
        "(Section IV-A.3)"
    )
    return table


SLICES_SPEC = CellExperiment(
    SLICES_EXPERIMENT, slices_cells, slices_run_cell, slices_reduce,
    description="Ablation: slice count l vs privacy/overhead/accuracy "
                "trade-off",
)


def run_slices(
    *,
    node_count: int = 400,
    slice_counts: Sequence[int] = (1, 2, 3, 4),
    px: float = 0.05,
    repetitions: int = 3,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentTable:
    """l sweep: privacy (Eq. 11), overhead ratio, accuracy, participation."""
    from ..runner import execute

    return execute(
        SLICES_SPEC,
        jobs=jobs,
        node_count=node_count,
        slice_counts=tuple(slice_counts),
        px=px,
        repetitions=repetitions,
        seed=seed,
    )


# --------------------------------------------------------------------------
# aggregator budget k
# --------------------------------------------------------------------------

BUDGET_EXPERIMENT = "ablation-budget"


def budget_cells(
    *,
    node_count: int = 500,
    budgets: Sequence[int] = (2, 4, 8, 16),
    repetitions: int = 10,
    seed: int = 0,
) -> List[Cell]:
    return [
        make_cell(
            BUDGET_EXPERIMENT,
            (int(budget),),
            rep,
            node_count=int(node_count),
            seed=int(seed),
        )
        for budget in budgets
        for rep in range(repetitions)
    ]


def budget_run_cell(cell: Cell) -> Tuple[float, float]:
    """Build trees under one budget; returns (agg fraction, coverage).

    The deployment *and* the tree-construction stream are shared across
    budgets at the same repetition (common random numbers: only the
    budget differs between the arms being compared).
    """
    (budget,) = cell.key
    seed = cell.param("seed")
    node_count = cell.param("node_count")
    topology = cached_deployment(
        node_count,
        seed=derive_seed(
            seed, BUDGET_EXPERIMENT, node_count, cell.rep, "deploy"
        ),
    )
    trees = build_disjoint_trees(
        topology,
        IpdaConfig(role_mode=RoleMode.ADAPTIVE, aggregator_budget=budget),
        np.random.default_rng(
            derive_seed(seed, BUDGET_EXPERIMENT, node_count, cell.rep, "trees")
        ),
    )
    sensors = node_count - 1
    aggregators = len(trees.aggregators(TreeColor.RED)) + len(
        trees.aggregators(TreeColor.BLUE)
    )
    return (
        aggregators / sensors,
        len(trees.covered_nodes() - {trees.base_station}) / sensors,
    )


def budget_reduce(
    cells: Sequence[Cell], results: Sequence[object]
) -> ExperimentTable:
    table = ExperimentTable(
        name="Ablation: aggregator budget k (adaptive mode)",
        columns=["k", "aggregator_fraction", "covered_fraction"],
    )
    for key, entries in grouped(cells, results).items():
        (budget,) = key
        table.add_row(
            budget,
            mean_std([result[0] for _cell, result in entries])[0],
            mean_std([result[1] for _cell, result in entries])[0],
        )
    table.add_note(
        "k trades HELLO/result forwarding load (fewer aggregators) "
        "against tree coverage; the paper fixes k=4"
    )
    return table


BUDGET_SPEC = CellExperiment(
    BUDGET_EXPERIMENT, budget_cells, budget_run_cell, budget_reduce,
    description="Ablation: per-node message budget k (Equation 1)",
)


def run_budget(
    *,
    node_count: int = 500,
    budgets: Sequence[int] = (2, 4, 8, 16),
    repetitions: int = 10,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentTable:
    """k sweep under the adaptive role mode (Equation 1)."""
    from ..runner import execute

    return execute(
        BUDGET_SPEC,
        jobs=jobs,
        node_count=node_count,
        budgets=tuple(budgets),
        repetitions=repetitions,
        seed=seed,
    )


# --------------------------------------------------------------------------
# role mode
# --------------------------------------------------------------------------

ROLE_MODE_EXPERIMENT = "ablation-role-mode"


def role_mode_cells(
    *,
    node_count: int = 500,
    repetitions: int = 10,
    seed: int = 0,
) -> List[Cell]:
    return [
        make_cell(
            ROLE_MODE_EXPERIMENT,
            (mode.value,),
            rep,
            node_count=int(node_count),
            seed=int(seed),
        )
        for mode in (RoleMode.FIXED, RoleMode.ADAPTIVE)
        for rep in range(repetitions)
    ]


def role_mode_run_cell(cell: Cell) -> Tuple[float, float, Optional[float]]:
    """Trees under one role mode on the shared (deployment, stream) pair."""
    (mode_value,) = cell.key
    seed = cell.param("seed")
    node_count = cell.param("node_count")
    topology = cached_deployment(
        node_count,
        seed=derive_seed(
            seed, ROLE_MODE_EXPERIMENT, node_count, cell.rep, "deploy"
        ),
    )
    trees = build_disjoint_trees(
        topology,
        IpdaConfig(role_mode=RoleMode(mode_value)),
        np.random.default_rng(
            derive_seed(
                seed, ROLE_MODE_EXPERIMENT, node_count, cell.rep, "trees"
            )
        ),
    )
    sensors = node_count - 1
    red = len(trees.aggregators(TreeColor.RED))
    blue = len(trees.aggregators(TreeColor.BLUE))
    return (
        (red + blue) / sensors,
        len(trees.covered_nodes() - {trees.base_station}) / sensors,
        abs(red - blue) / (red + blue) if red + blue else None,
    )


def role_mode_reduce(
    cells: Sequence[Cell], results: Sequence[object]
) -> ExperimentTable:
    table = ExperimentTable(
        name="Ablation: adaptive vs fixed role probabilities",
        columns=[
            "mode",
            "aggregator_fraction",
            "covered_fraction",
            "colour_imbalance",
        ],
    )
    for key, entries in grouped(cells, results).items():
        (mode_value,) = key
        imbalances = [
            result[2] for _cell, result in entries if result[2] is not None
        ]
        table.add_row(
            mode_value,
            mean_std([result[0] for _cell, result in entries])[0],
            mean_std([result[1] for _cell, result in entries])[0],
            mean_std(imbalances)[0] if imbalances else float("nan"),
        )
    return table


ROLE_MODE_SPEC = CellExperiment(
    ROLE_MODE_EXPERIMENT, role_mode_cells, role_mode_run_cell,
    role_mode_reduce,
    description="Ablation: aggregator-election role modes",
)


def run_role_mode(
    *,
    node_count: int = 500,
    repetitions: int = 10,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentTable:
    """Equation 1 (adaptive) vs Equation 2 (fixed 0.5/0.5)."""
    from ..runner import execute

    return execute(
        ROLE_MODE_SPEC,
        jobs=jobs,
        node_count=node_count,
        repetitions=repetitions,
        seed=seed,
    )


# --------------------------------------------------------------------------
# key schemes
# --------------------------------------------------------------------------

KEY_SCHEMES_EXPERIMENT = "ablation-key-schemes"

_KEY_SCHEME_NAMES = ("pairwise", "eg-predistribution", "global-key")


def _make_key_scheme(name: str, node_count: int, seed: int):
    key_seed = derive_seed(seed, KEY_SCHEMES_EXPERIMENT, name, "keys")
    if name == "pairwise":
        return PairwiseKeyScheme(node_count, seed=key_seed)
    if name == "eg-predistribution":
        return RandomPredistributionScheme(
            node_count, pool_size=500, ring_size=40, seed=key_seed
        )
    return GlobalKeyScheme(node_count, seed=key_seed)


def key_schemes_cells(
    *,
    node_count: int = 300,
    repetitions: int = 3,
    coalition_size: int = 20,
    seed: int = 0,
) -> List[Cell]:
    return [
        make_cell(
            KEY_SCHEMES_EXPERIMENT,
            (name,),
            rep,
            node_count=int(node_count),
            coalition_size=int(coalition_size),
            seed=int(seed),
        )
        for name in _KEY_SCHEME_NAMES
        for rep in range(repetitions)
    ]


def key_schemes_run_cell(cell: Cell) -> Tuple[float, float]:
    """One lossless round + coalition attack under one key scheme.

    Round and coalition streams are shared across schemes at the same
    repetition (common random numbers: the schemes are compared on the
    same slicing randomness and the same coalition).
    """
    (scheme_name,) = cell.key
    seed = cell.param("seed")
    node_count = cell.param("node_count")
    topology = cached_deployment(
        node_count,
        seed=derive_seed(
            seed, KEY_SCHEMES_EXPERIMENT, node_count, cell.rep, "deploy"
        ),
    )
    readings = count_readings(topology)
    result = run_lossless_round(
        topology,
        readings,
        IpdaConfig(),
        rng=RngStreams(
            derive_seed(
                seed, KEY_SCHEMES_EXPERIMENT, node_count, cell.rep, "round"
            )
        ).get("keyschemes"),
        key_scheme=_make_key_scheme(scheme_name, topology.node_count, seed),
        record_flows=True,
    )
    coalition = random_coalition(
        topology,
        cell.param("coalition_size"),
        np.random.default_rng(
            derive_seed(
                seed, KEY_SCHEMES_EXPERIMENT, node_count, cell.rep,
                "coalition",
            )
        ),
        exclude={0},
    )
    report = coalition_disclosure(result, coalition)
    return (
        len(result.participants) / (node_count - 1),
        report.disclosure_rate,
    )


def key_schemes_reduce(
    cells: Sequence[Cell], results: Sequence[object]
) -> ExperimentTable:
    table = ExperimentTable(
        name="Ablation: key management schemes",
        columns=[
            "scheme",
            "participation",
            "coalition_disclosure_rate",
        ],
    )
    for key, entries in grouped(cells, results).items():
        (scheme_name,) = key
        table.add_row(
            scheme_name,
            mean_std([result[0] for _cell, result in entries])[0],
            mean_std([result[1] for _cell, result in entries])[0],
        )
    table.add_note(
        "EG predistribution may lack shared keys on some links, "
        "shrinking the slice-target pool (lower participation)"
    )
    return table


KEY_SCHEMES_SPEC = CellExperiment(
    KEY_SCHEMES_EXPERIMENT, key_schemes_cells, key_schemes_run_cell,
    key_schemes_reduce,
    description="Ablation: pairwise key distribution schemes",
)


def run_key_schemes(
    *,
    node_count: int = 300,
    repetitions: int = 3,
    coalition_size: int = 20,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentTable:
    """Key-management comparison: who else can read a link's slices."""
    from ..runner import execute

    return execute(
        KEY_SCHEMES_SPEC,
        jobs=jobs,
        node_count=node_count,
        repetitions=repetitions,
        coalition_size=coalition_size,
        seed=seed,
    )


# --------------------------------------------------------------------------
# acceptance threshold Th
# --------------------------------------------------------------------------

THRESHOLD_EXPERIMENT = "ablation-threshold"


def threshold_cells(
    *,
    node_count: int = 400,
    thresholds: Sequence[int] = (0, 1, 5, 20, 100),
    repetitions: int = 5,
    pollution_offset: int = 50,
    seed: int = 0,
) -> List[Cell]:
    return [
        make_cell(
            THRESHOLD_EXPERIMENT,
            (int(threshold),),
            rep,
            node_count=int(node_count),
            pollution_offset=int(pollution_offset),
            seed=int(seed),
        )
        for threshold in thresholds
        for rep in range(repetitions)
    ]


def threshold_run_cell(cell: Cell) -> Tuple[float, Optional[float]]:
    """Benign round + attacked round; returns (accept, detect-or-None).

    The benign and attacked rounds deliberately replay the *same*
    stream seed: detection must be attributable to the pollution alone,
    not to different channel randomness.
    """
    (threshold,) = cell.key
    seed = cell.param("seed")
    node_count = cell.param("node_count")
    topology = cached_deployment(
        node_count,
        seed=derive_seed(
            seed, THRESHOLD_EXPERIMENT, node_count, cell.rep, "deploy"
        ),
    )
    readings = count_readings(topology)
    protocol = IpdaProtocol(IpdaConfig(threshold=threshold))
    round_seed = derive_seed(
        seed, THRESHOLD_EXPERIMENT, node_count, cell.rep, "round"
    )
    benign = protocol.run_round(
        topology,
        readings,
        streams=RngStreams(round_seed),
        round_id=cell.rep,
    )
    benign_accept = 1.0 if benign.accepted else 0.0
    polluter = max(benign.covered, default=None)
    if polluter is None:
        return benign_accept, None
    attacked = protocol.run_round(
        topology,
        readings,
        streams=RngStreams(round_seed),
        round_id=cell.rep,
        polluters={polluter: cell.param("pollution_offset")},
    )
    return benign_accept, 0.0 if attacked.accepted else 1.0


def threshold_reduce(
    cells: Sequence[Cell], results: Sequence[object]
) -> ExperimentTable:
    table = ExperimentTable(
        name="Ablation: acceptance threshold Th",
        columns=["Th", "benign_accept_rate", "attack_detect_rate"],
    )
    for key, entries in grouped(cells, results).items():
        (threshold,) = key
        detections = [
            result[1] for _cell, result in entries if result[1] is not None
        ]
        table.add_row(
            threshold,
            mean_std([result[0] for _cell, result in entries])[0],
            mean_std(detections)[0] if detections else float("nan"),
        )
    pollution_offset = (
        cells[0].param("pollution_offset") if cells else 50
    )
    table.add_note(
        f"attack injects a +{pollution_offset} offset at one aggregator; "
        "Th must sit between benign loss noise and the smallest attack "
        "worth detecting"
    )
    return table


THRESHOLD_SPEC = CellExperiment(
    THRESHOLD_EXPERIMENT, threshold_cells, threshold_run_cell,
    threshold_reduce,
    description="Ablation: integrity threshold Th sweep",
)


def run_threshold(
    *,
    node_count: int = 400,
    thresholds: Sequence[int] = (0, 1, 5, 20, 100),
    repetitions: int = 5,
    pollution_offset: int = 50,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentTable:
    """Th sensitivity: benign false-rejects vs. detected pollution."""
    from ..runner import execute

    return execute(
        THRESHOLD_SPEC,
        jobs=jobs,
        node_count=node_count,
        thresholds=tuple(thresholds),
        repetitions=repetitions,
        pollution_offset=pollution_offset,
        seed=seed,
    )


# --------------------------------------------------------------------------
# m-tree generalisation
# --------------------------------------------------------------------------

TREES_EXPERIMENT = "ablation-trees"


def tree_count_cells(
    *,
    node_count: int = 600,
    tree_counts: Sequence[int] = (2, 3, 4),
    repetitions: int = 5,
    pollution_offset: int = 500,
    seed: int = 0,
) -> List[Cell]:
    return [
        make_cell(
            TREES_EXPERIMENT,
            (int(tree_count),),
            rep,
            node_count=int(node_count),
            pollution_offset=int(pollution_offset),
            seed=int(seed),
        )
        for tree_count in tree_counts
        for rep in range(repetitions)
    ]


def tree_count_run_cell(
    cell: Cell,
) -> Tuple[float, Optional[float], Optional[float]]:
    """Clean + attacked m-tree rounds on the shared deployment."""
    from ..core.multitree import build_multi_trees, run_multitree_round

    (tree_count,) = cell.key
    seed = cell.param("seed")
    node_count = cell.param("node_count")
    topology = cached_deployment(
        node_count,
        seed=derive_seed(
            seed, TREES_EXPERIMENT, node_count, cell.rep, "deploy"
        ),
    )
    readings = count_readings(topology)
    # One rng drives tree build, clean round, attacked round in
    # sequence, as the attacked round replays on the clean trees.
    rng = np.random.default_rng(
        derive_seed(
            seed, TREES_EXPERIMENT, node_count, cell.rep, "round", tree_count
        )
    )
    trees = build_multi_trees(topology, tree_count, rng)
    sensors = node_count - 1
    clean = run_multitree_round(
        topology, readings, tree_count, rng=rng, trees=trees
    )
    participation = len(clean.participants) / sensors
    tree0 = sorted(trees.aggregators(0))
    if not tree0:
        return participation, None, None
    attacked = run_multitree_round(
        topology,
        readings,
        tree_count,
        rng=rng,
        trees=trees,
        polluters={tree0[0]: cell.param("pollution_offset")},
    )
    polluted = attacked.verification.polluted_trees
    detected = (
        1.0
        if 0 in polluted or not attacked.verification.accepted
        else 0.0
    )
    tolerated = 1.0 if attacked.verification.accepted else 0.0
    return participation, detected, tolerated


def tree_count_reduce(
    cells: Sequence[Cell], results: Sequence[object]
) -> ExperimentTable:
    from ..core.multitree import multitree_messages_per_node

    table = ExperimentTable(
        name="Ablation: number of disjoint trees m",
        columns=[
            "m",
            "messages_per_node",
            "participation",
            "detected_rate",
            "tolerated_rate",
        ],
    )
    for key, entries in grouped(cells, results).items():
        (tree_count,) = key
        detected = [
            result[1] for _cell, result in entries if result[1] is not None
        ]
        tolerated = [
            result[2] for _cell, result in entries if result[2] is not None
        ]
        table.add_row(
            tree_count,
            multitree_messages_per_node(tree_count, 2),
            mean_std([result[0] for _cell, result in entries])[0],
            mean_std(detected)[0] if detected else float("nan"),
            mean_std(tolerated)[0] if tolerated else float("nan"),
        )
    table.add_note(
        "m=2 detects (rejects) pollution; m>=3 also *tolerates* it by "
        "majority vote, at (m*l+1)/2 x TAG message cost and a density "
        "requirement growing with m"
    )
    return table


TREES_SPEC = CellExperiment(
    TREES_EXPERIMENT, tree_count_cells, tree_count_run_cell,
    tree_count_reduce,
    description="Ablation: number of disjoint aggregation trees",
)


def run_tree_count(
    *,
    node_count: int = 600,
    tree_counts: Sequence[int] = (2, 3, 4),
    repetitions: int = 5,
    pollution_offset: int = 500,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentTable:
    """m-tree generalisation: coverage, overhead, pollution tolerance.

    With m = 2 pollution is only *detected* (round rejected); with
    m >= 3 the majority vote identifies the polluted tree and still
    accepts the round — the column ``tolerated_rate`` measures that.
    """
    from ..runner import execute

    return execute(
        TREES_SPEC,
        jobs=jobs,
        node_count=node_count,
        tree_counts=tuple(tree_counts),
        repetitions=repetitions,
        pollution_offset=pollution_offset,
        seed=seed,
    )


SPECS = (
    SLICES_SPEC,
    BUDGET_SPEC,
    ROLE_MODE_SPEC,
    KEY_SCHEMES_SPEC,
    THRESHOLD_SPEC,
    TREES_SPEC,
)
