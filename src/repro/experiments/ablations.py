"""Ablation studies beyond the paper's figures.

Each ablation isolates one design choice DESIGN.md calls out:

* ``run_slices`` — the privacy/overhead/accuracy trade-off of ``l``;
* ``run_budget`` — the aggregator-budget ``k`` of the adaptive mode
  (coverage vs. number of aggregators);
* ``run_role_mode`` — adaptive Equation 1 vs. fixed Equation 2;
* ``run_key_schemes`` — insider exposure under pairwise keys vs.
  Eschenauer-Gligor predistribution vs. a global key;
* ``run_threshold`` — Th sensitivity: benign-loss false rejections vs.
  smallest detectable pollution.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..analysis.overhead import overhead_ratio
from ..analysis.privacy import average_disclosure_probability
from ..attacks.collusion import coalition_disclosure, random_coalition
from ..core.config import IpdaConfig, RoleMode
from ..core.pipeline import run_lossless_round
from ..core.trees import build_disjoint_trees
from ..crypto.keys import (
    GlobalKeyScheme,
    PairwiseKeyScheme,
    RandomPredistributionScheme,
)
from ..net.topology import random_deployment
from ..protocols.ipda import IpdaProtocol
from ..rng import RngStreams
from ..sim.messages import TreeColor
from ..workloads.readings import count_readings
from .common import ExperimentTable, mean_std

__all__ = [
    "run_slices",
    "run_budget",
    "run_role_mode",
    "run_key_schemes",
    "run_threshold",
    "run_tree_count",
]


def run_slices(
    *,
    node_count: int = 400,
    slice_counts: Sequence[int] = (1, 2, 3, 4),
    px: float = 0.05,
    repetitions: int = 3,
    seed: int = 0,
) -> ExperimentTable:
    """l sweep: privacy (Eq. 11), overhead ratio, accuracy, participation."""
    table = ExperimentTable(
        name="Ablation: number of slices l",
        columns=[
            "l",
            "analytic_pdisclose",
            "overhead_ratio",
            "accuracy",
            "participation",
        ],
    )
    for slices in slice_counts:
        accuracies, participation = [], []
        topology = random_deployment(node_count, seed=seed)
        for rep in range(repetitions):
            readings = count_readings(topology)
            outcome = IpdaProtocol(IpdaConfig(slices=slices)).run_round(
                topology,
                readings,
                streams=RngStreams(seed + rep),
                round_id=rep,
            )
            collected = (outcome.s_red + outcome.s_blue) / 2
            accuracies.append(collected / outcome.true_total)
            participation.append(
                len(outcome.participants) / (node_count - 1)
            )
        table.add_row(
            slices,
            average_disclosure_probability(topology, px, slices),
            overhead_ratio(slices),
            mean_std(accuracies)[0],
            mean_std(participation)[0],
        )
    table.add_note(
        f"privacy at px={px}; the paper recommends l=2 as the knee "
        "(Section IV-A.3)"
    )
    return table


def run_budget(
    *,
    node_count: int = 500,
    budgets: Sequence[int] = (2, 4, 8, 16),
    repetitions: int = 10,
    seed: int = 0,
) -> ExperimentTable:
    """k sweep under the adaptive role mode (Equation 1)."""
    table = ExperimentTable(
        name="Ablation: aggregator budget k (adaptive mode)",
        columns=["k", "aggregator_fraction", "covered_fraction"],
    )
    for budget in budgets:
        config = IpdaConfig(
            role_mode=RoleMode.ADAPTIVE, aggregator_budget=budget
        )
        agg_fractions, covered = [], []
        for rep in range(repetitions):
            topology = random_deployment(node_count, seed=seed + rep)
            trees = build_disjoint_trees(
                topology, config, np.random.default_rng(seed + 100 * rep)
            )
            sensors = node_count - 1
            aggregators = len(trees.aggregators(TreeColor.RED)) + len(
                trees.aggregators(TreeColor.BLUE)
            )
            agg_fractions.append(aggregators / sensors)
            covered.append(
                len(trees.covered_nodes() - {trees.base_station}) / sensors
            )
        table.add_row(
            budget, mean_std(agg_fractions)[0], mean_std(covered)[0]
        )
    table.add_note(
        "k trades HELLO/result forwarding load (fewer aggregators) "
        "against tree coverage; the paper fixes k=4"
    )
    return table


def run_role_mode(
    *,
    node_count: int = 500,
    repetitions: int = 10,
    seed: int = 0,
) -> ExperimentTable:
    """Equation 1 (adaptive) vs Equation 2 (fixed 0.5/0.5)."""
    table = ExperimentTable(
        name="Ablation: adaptive vs fixed role probabilities",
        columns=[
            "mode",
            "aggregator_fraction",
            "covered_fraction",
            "colour_imbalance",
        ],
    )
    for mode in (RoleMode.FIXED, RoleMode.ADAPTIVE):
        config = IpdaConfig(role_mode=mode)
        fractions, covered, imbalance = [], [], []
        for rep in range(repetitions):
            topology = random_deployment(node_count, seed=seed + rep)
            trees = build_disjoint_trees(
                topology, config, np.random.default_rng(seed + 7 * rep)
            )
            sensors = node_count - 1
            red = len(trees.aggregators(TreeColor.RED))
            blue = len(trees.aggregators(TreeColor.BLUE))
            fractions.append((red + blue) / sensors)
            covered.append(
                len(trees.covered_nodes() - {trees.base_station}) / sensors
            )
            if red + blue:
                imbalance.append(abs(red - blue) / (red + blue))
        table.add_row(
            mode.value,
            mean_std(fractions)[0],
            mean_std(covered)[0],
            mean_std(imbalance)[0],
        )
    return table


def run_key_schemes(
    *,
    node_count: int = 300,
    repetitions: int = 3,
    coalition_size: int = 20,
    seed: int = 0,
) -> ExperimentTable:
    """Key-management comparison: who else can read a link's slices."""
    table = ExperimentTable(
        name="Ablation: key management schemes",
        columns=[
            "scheme",
            "participation",
            "coalition_disclosure_rate",
        ],
    )
    schemes = [
        ("pairwise", lambda n: PairwiseKeyScheme(n, seed=seed)),
        (
            "eg-predistribution",
            lambda n: RandomPredistributionScheme(
                n, pool_size=500, ring_size=40, seed=seed
            ),
        ),
        ("global-key", lambda n: GlobalKeyScheme(n, seed=seed)),
    ]
    for name, factory in schemes:
        participation, disclosure = [], []
        for rep in range(repetitions):
            topology = random_deployment(node_count, seed=seed + rep)
            readings = count_readings(topology)
            scheme = factory(topology.node_count)
            result = run_lossless_round(
                topology,
                readings,
                IpdaConfig(),
                rng=RngStreams(seed + rep).get("keyschemes"),
                key_scheme=scheme,
                record_flows=True,
            )
            sensors = node_count - 1
            participation.append(len(result.participants) / sensors)
            rng = np.random.default_rng(seed + 55 * rep)
            coalition = random_coalition(
                topology, coalition_size, rng, exclude={0}
            )
            report = coalition_disclosure(result, coalition)
            disclosure.append(report.disclosure_rate)
        table.add_row(
            name, mean_std(participation)[0], mean_std(disclosure)[0]
        )
    table.add_note(
        "EG predistribution may lack shared keys on some links, "
        "shrinking the slice-target pool (lower participation)"
    )
    return table


def run_threshold(
    *,
    node_count: int = 400,
    thresholds: Sequence[int] = (0, 1, 5, 20, 100),
    repetitions: int = 5,
    pollution_offset: int = 50,
    seed: int = 0,
) -> ExperimentTable:
    """Th sensitivity: benign false-rejects vs. detected pollution."""
    table = ExperimentTable(
        name="Ablation: acceptance threshold Th",
        columns=["Th", "benign_accept_rate", "attack_detect_rate"],
    )
    for threshold in thresholds:
        benign_accepts, detections = [], []
        for rep in range(repetitions):
            topology = random_deployment(node_count, seed=seed + rep + 7)
            readings = count_readings(topology)
            config = IpdaConfig(threshold=threshold)
            protocol = IpdaProtocol(config)
            benign = protocol.run_round(
                topology,
                readings,
                streams=RngStreams(seed + rep),
                round_id=rep,
            )
            benign_accepts.append(1.0 if benign.accepted else 0.0)
            polluter = max(benign.covered, default=None)
            if polluter is None:
                continue
            attacked = protocol.run_round(
                topology,
                readings,
                streams=RngStreams(seed + rep),
                round_id=rep,
                polluters={polluter: pollution_offset},
            )
            detections.append(0.0 if attacked.accepted else 1.0)
        table.add_row(
            threshold,
            mean_std(benign_accepts)[0],
            mean_std(detections)[0] if detections else float("nan"),
        )
    table.add_note(
        f"attack injects a +{pollution_offset} offset at one aggregator; "
        "Th must sit between benign loss noise and the smallest attack "
        "worth detecting"
    )
    return table


def run_tree_count(
    *,
    node_count: int = 600,
    tree_counts: Sequence[int] = (2, 3, 4),
    repetitions: int = 5,
    pollution_offset: int = 500,
    seed: int = 0,
) -> ExperimentTable:
    """m-tree generalisation: coverage, overhead, pollution tolerance.

    With m = 2 pollution is only *detected* (round rejected); with
    m >= 3 the majority vote identifies the polluted tree and still
    accepts the round — the column ``tolerated_rate`` measures that.
    """
    from ..core.multitree import (
        build_multi_trees,
        multitree_messages_per_node,
        run_multitree_round,
    )

    table = ExperimentTable(
        name="Ablation: number of disjoint trees m",
        columns=[
            "m",
            "messages_per_node",
            "participation",
            "detected_rate",
            "tolerated_rate",
        ],
    )
    for tree_count in tree_counts:
        participation, detected, tolerated = [], [], []
        for rep in range(repetitions):
            topology = random_deployment(node_count, seed=seed + rep)
            readings = count_readings(topology)
            rng = np.random.default_rng(seed + 101 * rep + tree_count)
            trees = build_multi_trees(topology, tree_count, rng)
            sensors = node_count - 1
            clean = run_multitree_round(
                topology,
                readings,
                tree_count,
                rng=rng,
                trees=trees,
            )
            participation.append(len(clean.participants) / sensors)
            # One polluter on tree 0.
            tree0 = sorted(trees.aggregators(0))
            if not tree0:
                continue
            attacked = run_multitree_round(
                topology,
                readings,
                tree_count,
                rng=rng,
                trees=trees,
                polluters={tree0[0]: pollution_offset},
            )
            polluted = attacked.verification.polluted_trees
            detected.append(1.0 if 0 in polluted or not attacked.verification.accepted else 0.0)
            tolerated.append(1.0 if attacked.verification.accepted else 0.0)
        table.add_row(
            tree_count,
            multitree_messages_per_node(tree_count, 2),
            mean_std(participation)[0],
            mean_std(detected)[0] if detected else float("nan"),
            mean_std(tolerated)[0] if tolerated else float("nan"),
        )
    table.add_note(
        "m=2 detects (rejects) pollution; m>=3 also *tolerates* it by "
        "majority vote, at (m*l+1)/2 x TAG message cost and a density "
        "requirement growing with m"
    )
    return table
