"""Figure 8 — coverage, participation, and accuracy over density.

Three linked sweeps over network size:

* (a) fraction of nodes covered by both trees — loss factor (a);
* (b) fraction of nodes that actually participate (covered *and*
  enough slice targets) — adds factor (b);
* (c) end-to-end accuracy of the COUNT aggregate under the full radio
  stack for iPDA (l = 1, 2) vs TAG — adds collision losses, factor (c).

(a) and (b) are measured with the logical Phase-I builder (the channel
plays no role in them); (c) runs the full simulator.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..analysis.participation import participation_fraction_for_topology
from ..core.config import IpdaConfig
from ..core.trees import build_disjoint_trees
from ..protocols.ipda import IpdaProtocol
from ..protocols.tag import TagProtocol
from ..rng import RngStreams, derive_seed
from ..workloads.readings import count_readings
from .common import (
    PAPER_SIZES,
    Cell,
    CellExperiment,
    ExperimentTable,
    cached_deployment,
    grouped,
    make_cell,
    mean_std,
)

__all__ = ["run", "run_coverage_only", "SPEC", "COVERAGE_SPEC"]

EXPERIMENT = "fig8"
COVERAGE_EXPERIMENT = "fig8-coverage"


def _coverage_cells(
    experiment: str,
    sizes: Sequence[int],
    slice_counts: Sequence[int],
    repetitions: int,
    seed: int,
) -> List[Cell]:
    return [
        make_cell(
            experiment,
            ("coverage", int(size)),
            rep,
            slice_counts=tuple(int(s) for s in slice_counts),
            seed=int(seed),
        )
        for size in sizes
        for rep in range(repetitions)
    ]


def coverage_cells(
    sizes: Sequence[int] = PAPER_SIZES,
    *,
    slice_counts: Sequence[int] = (1, 2),
    repetitions: int = 20,
    seed: int = 0,
) -> List[Cell]:
    """One coverage/participation cell per ``(size, repetition)``."""
    return _coverage_cells(
        COVERAGE_EXPERIMENT, sizes, slice_counts, repetitions, seed
    )


def cells(
    sizes: Sequence[int] = PAPER_SIZES,
    *,
    slice_counts: Sequence[int] = (1, 2),
    repetitions: int = 3,
    coverage_repetitions: int = 20,
    seed: int = 0,
) -> List[Cell]:
    """Coverage cells first, then full-radio accuracy cells."""
    out = _coverage_cells(
        EXPERIMENT, sizes, slice_counts, coverage_repetitions, seed
    )
    out.extend(
        make_cell(
            EXPERIMENT,
            ("accuracy", int(size)),
            rep,
            slice_counts=tuple(int(s) for s in slice_counts),
            seed=int(seed),
        )
        for size in sizes
        for rep in range(repetitions)
    )
    return out


def _run_coverage_cell(cell: Cell) -> Dict[str, object]:
    _kind, size = cell.key
    seed = cell.param("seed")
    topology = cached_deployment(
        size,
        seed=derive_seed(seed, EXPERIMENT, "coverage", size, cell.rep),
    )
    rng = np.random.default_rng(
        derive_seed(seed, EXPERIMENT, "coverage", size, cell.rep, "trees")
    )
    trees = build_disjoint_trees(topology, IpdaConfig(), rng)
    sensors = size - 1
    participants = {}
    analytic = {}
    for slices in cell.param("slice_counts"):
        participants[slices] = len(trees.participants(slices)) / sensors
        analytic[slices] = participation_fraction_for_topology(
            topology, slices
        )
    return {
        "covered": len(trees.covered_nodes() - {trees.base_station})
        / sensors,
        "participants": participants,
        "analytic": analytic,
    }


def _run_accuracy_cell(cell: Cell) -> Dict[str, object]:
    _kind, size = cell.key
    seed = cell.param("seed")
    topology = cached_deployment(
        size,
        seed=derive_seed(seed, EXPERIMENT, "accuracy", size, cell.rep),
    )
    readings = count_readings(topology)
    # Protocol variants share the deployment (paired comparison) but
    # draw from independently derived streams — the old harness fed one
    # RngStreams to every variant, so l=1 and l=2 spawned identical
    # per-round streams and their rounds were correlated.
    accuracies = {}
    for slices in cell.param("slice_counts"):
        outcome = IpdaProtocol(IpdaConfig(slices=slices)).run_round(
            topology,
            readings,
            streams=RngStreams(
                derive_seed(
                    seed, EXPERIMENT, "accuracy", size, cell.rep,
                    "ipda", slices,
                )
            ),
            round_id=cell.rep,
        )
        # Accuracy counts the collected sum even on the rare
        # loss-driven rejection: Figure 8(c) has no attacker, so the
        # collected value is what the curve plots.
        collected = (outcome.s_red + outcome.s_blue) / 2
        accuracies[slices] = collected / outcome.true_total
    tag_outcome = TagProtocol().run_round(
        topology,
        readings,
        streams=RngStreams(
            derive_seed(seed, EXPERIMENT, "accuracy", size, cell.rep, "tag")
        ),
        round_id=cell.rep,
    )
    return {"ipda": accuracies, "tag": tag_outcome.accuracy}


def run_cell(cell: Cell) -> Dict[str, object]:
    """Dispatch on the cell kind (coverage vs full-radio accuracy)."""
    kind, _size = cell.key
    if kind == "coverage":
        return _run_coverage_cell(cell)
    return _run_accuracy_cell(cell)


def _coverage_rows(
    entries: Sequence[Tuple[Cell, Dict[str, object]]],
    slice_counts: Sequence[int],
) -> List[float]:
    row = [mean_std([result["covered"] for _cell, result in entries])[0]]
    row.extend(
        mean_std([result["participants"][slices] for _cell, result in entries])[0]
        for slices in slice_counts
    )
    row.extend(
        mean_std([result["analytic"][slices] for _cell, result in entries])[0]
        for slices in slice_counts
    )
    return row


def _coverage_notes(table: ExperimentTable) -> None:
    table.add_note(
        "coverage: heard both colours (factor a); participation adds "
        "the l-targets-per-colour requirement (factor b)"
    )
    table.add_note(
        "analytic_l*: binomial closed form (analysis.participation); "
        "matches the measured fraction once coverage saturates"
    )


def reduce_coverage(
    cells: Sequence[Cell], results: Sequence[object]
) -> ExperimentTable:
    """Figures 8(a)/(b) rows only."""
    slice_counts = cells[0].param("slice_counts") if cells else ()
    columns = ["nodes", "covered_fraction"]
    columns.extend(f"participants_l{slices}" for slices in slice_counts)
    columns.extend(f"analytic_l{slices}" for slices in slice_counts)
    table = ExperimentTable(
        name="Figure 8(a)/(b): coverage and participation", columns=columns
    )
    for key, entries in grouped(cells, results).items():
        _kind, size = key
        table.add_row(size, *_coverage_rows(entries, slice_counts))
    _coverage_notes(table)
    return table


def reduce(cells: Sequence[Cell], results: Sequence[object]) -> ExperimentTable:
    """Combine coverage and accuracy groups into the full Figure 8."""
    slice_counts = cells[0].param("slice_counts") if cells else ()
    columns = ["nodes", "covered_fraction"]
    columns.extend(f"participants_l{slices}" for slices in slice_counts)
    columns.extend(f"analytic_l{slices}" for slices in slice_counts)
    columns.extend(f"accuracy_ipda_l{slices}" for slices in slice_counts)
    columns.append("accuracy_tag")
    table = ExperimentTable(
        name="Figure 8: coverage, participation, accuracy", columns=columns
    )

    groups = grouped(cells, results)
    sizes = []
    for kind, size in groups:
        if kind == "coverage" and size not in sizes:
            sizes.append(size)
    for size in sizes:
        row: list = [size]
        row.extend(_coverage_rows(groups[("coverage", size)], slice_counts))
        accuracy_entries = groups[("accuracy", size)]
        row.extend(
            mean_std(
                [result["ipda"][slices] for _cell, result in accuracy_entries]
            )[0]
            for slices in slice_counts
        )
        row.append(
            mean_std([result["tag"] for _cell, result in accuracy_entries])[0]
        )
        table.add_row(*row)

    _coverage_notes(table)
    table.add_note(
        "accuracy = collected COUNT / true COUNT; factors (a)+(b)+(c)"
    )
    return table


SPEC = CellExperiment(
    EXPERIMENT, cells, run_cell, reduce,
    description="Figure 8: coverage, participation, and accuracy over "
                "density",
)
COVERAGE_SPEC = CellExperiment(
    COVERAGE_EXPERIMENT, coverage_cells, run_cell, reduce_coverage,
    description="Figure 8 (coverage-only sweep at higher repetitions)",
)
SPECS = (SPEC, COVERAGE_SPEC)


def run_coverage_only(
    sizes: Sequence[int] = PAPER_SIZES,
    *,
    slice_counts: Sequence[int] = (1, 2),
    repetitions: int = 20,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentTable:
    """Figures 8(a) and 8(b): coverage and participation fractions."""
    from ..runner import execute

    return execute(
        COVERAGE_SPEC,
        jobs=jobs,
        sizes=sizes,
        slice_counts=tuple(slice_counts),
        repetitions=repetitions,
        seed=seed,
    )


def run(
    sizes: Sequence[int] = PAPER_SIZES,
    *,
    slice_counts: Sequence[int] = (1, 2),
    repetitions: int = 3,
    coverage_repetitions: int = 20,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentTable:
    """Regenerate the full Figure 8 (a, b, c) as one table."""
    from ..runner import execute

    return execute(
        SPEC,
        jobs=jobs,
        sizes=sizes,
        slice_counts=tuple(slice_counts),
        repetitions=repetitions,
        coverage_repetitions=coverage_repetitions,
        seed=seed,
    )
