"""Figure 8 — coverage, participation, and accuracy over density.

Three linked sweeps over network size:

* (a) fraction of nodes covered by both trees — loss factor (a);
* (b) fraction of nodes that actually participate (covered *and*
  enough slice targets) — adds factor (b);
* (c) end-to-end accuracy of the COUNT aggregate under the full radio
  stack for iPDA (l = 1, 2) vs TAG — adds collision losses, factor (c).

(a) and (b) are measured with the logical Phase-I builder (the channel
plays no role in them); (c) runs the full simulator.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..analysis.participation import participation_fraction_for_topology
from ..core.config import IpdaConfig
from ..core.trees import build_disjoint_trees
from ..net.topology import random_deployment
from ..protocols.ipda import IpdaProtocol
from ..protocols.tag import TagProtocol
from ..rng import RngStreams
from ..workloads.readings import count_readings
from .common import PAPER_SIZES, ExperimentTable, mean_std

__all__ = ["run", "run_coverage_only"]


def run_coverage_only(
    sizes: Sequence[int] = PAPER_SIZES,
    *,
    slice_counts: Sequence[int] = (1, 2),
    repetitions: int = 20,
    seed: int = 0,
) -> ExperimentTable:
    """Figures 8(a) and 8(b): coverage and participation fractions."""
    columns = ["nodes", "covered_fraction"]
    columns.extend(f"participants_l{slices}" for slices in slice_counts)
    columns.extend(f"analytic_l{slices}" for slices in slice_counts)
    table = ExperimentTable(
        name="Figure 8(a)/(b): coverage and participation", columns=columns
    )
    config = IpdaConfig()
    for size in sizes:
        covered = []
        participating = {slices: [] for slices in slice_counts}
        analytic = {slices: [] for slices in slice_counts}
        for rep in range(repetitions):
            topology = random_deployment(size, seed=seed + 13 * rep + size)
            rng = np.random.default_rng(seed + 977 * rep + size)
            trees = build_disjoint_trees(topology, config, rng)
            sensors = size - 1
            covered.append(
                len(trees.covered_nodes() - {trees.base_station}) / sensors
            )
            for slices in slice_counts:
                participating[slices].append(
                    len(trees.participants(slices)) / sensors
                )
                analytic[slices].append(
                    participation_fraction_for_topology(topology, slices)
                )
        row: list = [size, mean_std(covered)[0]]
        row.extend(
            mean_std(participating[slices])[0] for slices in slice_counts
        )
        row.extend(
            mean_std(analytic[slices])[0] for slices in slice_counts
        )
        table.add_row(*row)
    table.add_note(
        "coverage: heard both colours (factor a); participation adds "
        "the l-targets-per-colour requirement (factor b)"
    )
    table.add_note(
        "analytic_l*: binomial closed form (analysis.participation); "
        "matches the measured fraction once coverage saturates"
    )
    return table


def run(
    sizes: Sequence[int] = PAPER_SIZES,
    *,
    slice_counts: Sequence[int] = (1, 2),
    repetitions: int = 3,
    coverage_repetitions: int = 20,
    seed: int = 0,
) -> ExperimentTable:
    """Regenerate the full Figure 8 (a, b, c) as one table."""
    coverage = run_coverage_only(
        sizes,
        slice_counts=slice_counts,
        repetitions=coverage_repetitions,
        seed=seed,
    )
    columns = list(coverage.columns)
    columns.extend(f"accuracy_ipda_l{slices}" for slices in slice_counts)
    columns.append("accuracy_tag")
    table = ExperimentTable(
        name="Figure 8: coverage, participation, accuracy", columns=columns
    )

    for row_index, size in enumerate(sizes):
        accuracies = {slices: [] for slices in slice_counts}
        tag_accuracies = []
        for rep in range(repetitions):
            topology = random_deployment(size, seed=seed + 29 * rep + size)
            readings = count_readings(topology)
            streams = RngStreams(seed + 3000 * rep + size)
            for slices in slice_counts:
                outcome = IpdaProtocol(IpdaConfig(slices=slices)).run_round(
                    topology, readings, streams=streams, round_id=rep
                )
                # Accuracy counts the collected sum even on the rare
                # loss-driven rejection: Figure 8(c) has no attacker, so
                # the collected value is what the curve plots.
                collected = (outcome.s_red + outcome.s_blue) / 2
                accuracies[slices].append(collected / outcome.true_total)
            tag_outcome = TagProtocol().run_round(
                topology, readings, streams=streams, round_id=rep
            )
            tag_accuracies.append(tag_outcome.accuracy)
        row = list(coverage.rows[row_index])
        row.extend(mean_std(accuracies[slices])[0] for slices in slice_counts)
        row.append(mean_std(tag_accuracies)[0])
        table.add_row(*row)

    for note in coverage.notes:
        table.add_note(note)
    table.add_note(
        "accuracy = collected COUNT / true COUNT; factors (a)+(b)+(c)"
    )
    return table
