"""Figure 7 — bandwidth consumption of iPDA vs TAG.

Total bytes on the air per query over the size sweep, for TAG,
iPDA (l = 1) and iPDA (l = 2); the measured iPDA/TAG ratios are
reported next to the analytic ``(2l + 1)/2``.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.overhead import overhead_ratio
from ..core.config import IpdaConfig
from ..net.topology import random_deployment
from ..protocols.ipda import IpdaProtocol
from ..protocols.tag import TagProtocol
from ..rng import RngStreams
from ..workloads.readings import count_readings
from .common import PAPER_SIZES, ExperimentTable, mean_std

__all__ = ["run"]


def run(
    sizes: Sequence[int] = PAPER_SIZES,
    *,
    slice_counts: Sequence[int] = (1, 2),
    repetitions: int = 3,
    seed: int = 0,
) -> ExperimentTable:
    """Regenerate Figure 7."""
    columns = ["nodes", "tag_bytes"]
    for slices in slice_counts:
        columns.extend([f"ipda_l{slices}_bytes", f"ratio_l{slices}"])
    table = ExperimentTable(
        name="Figure 7: bandwidth consumption iPDA vs TAG", columns=columns
    )

    for size in sizes:
        tag_bytes = []
        ipda_bytes = {slices: [] for slices in slice_counts}
        for rep in range(repetitions):
            topology = random_deployment(size, seed=seed + 17 * rep + size)
            readings = count_readings(topology)
            streams = RngStreams(seed + 100 * rep + size)
            tag_outcome = TagProtocol().run_round(
                topology, readings, streams=streams, round_id=rep
            )
            tag_bytes.append(float(tag_outcome.bytes_sent))
            for slices in slice_counts:
                outcome = IpdaProtocol(IpdaConfig(slices=slices)).run_round(
                    topology, readings, streams=streams, round_id=rep
                )
                ipda_bytes[slices].append(float(outcome.bytes_sent))
        tag_mean, _ = mean_std(tag_bytes)
        row: list = [size, tag_mean]
        for slices in slice_counts:
            ipda_mean, _ = mean_std(ipda_bytes[slices])
            row.extend([ipda_mean, ipda_mean / tag_mean])
        table.add_row(*row)

    ratios = ", ".join(
        f"l={slices}: {overhead_ratio(slices):.2f}" for slices in slice_counts
    )
    table.add_note(f"analytic ratios (2l+1)/2 -> {ratios}")
    table.add_note(
        "sub-analytic ratios at N<300 reflect non-participation in "
        "sparse networks (Section IV-B.2)"
    )
    return table
