"""Figure 7 — bandwidth consumption of iPDA vs TAG.

Total bytes on the air per query over the size sweep, for TAG,
iPDA (l = 1) and iPDA (l = 2); the measured iPDA/TAG ratios are
reported next to the analytic ``(2l + 1)/2``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis.overhead import overhead_ratio
from ..core.config import IpdaConfig
from ..protocols.ipda import IpdaProtocol
from ..protocols.tag import TagProtocol
from ..rng import RngStreams, derive_seed
from ..workloads.readings import count_readings
from .common import (
    PAPER_SIZES,
    Cell,
    CellExperiment,
    ExperimentTable,
    cached_deployment,
    grouped,
    make_cell,
    mean_std,
)

__all__ = ["run", "SPEC"]

EXPERIMENT = "fig7"


def cells(
    sizes: Sequence[int] = PAPER_SIZES,
    *,
    slice_counts: Sequence[int] = (1, 2),
    repetitions: int = 3,
    seed: int = 0,
) -> List[Cell]:
    """One cell per ``(size, repetition)``; protocols share the cell."""
    return [
        make_cell(
            EXPERIMENT,
            (int(size),),
            rep,
            slice_counts=tuple(int(s) for s in slice_counts),
            seed=int(seed),
        )
        for size in sizes
        for rep in range(repetitions)
    ]


def run_cell(cell: Cell) -> Dict[str, object]:
    """TAG plus iPDA (each l) on one shared deployment.

    The deployment is shared across protocols deliberately (paired
    comparison on identical terrain); the per-protocol RNG streams are
    derived independently so the rounds themselves are uncorrelated.
    """
    (size,) = cell.key
    seed = cell.param("seed")
    topology = cached_deployment(
        size, seed=derive_seed(seed, EXPERIMENT, size, cell.rep, "deploy")
    )
    readings = count_readings(topology)
    tag_outcome = TagProtocol().run_round(
        topology,
        readings,
        streams=RngStreams(
            derive_seed(seed, EXPERIMENT, size, cell.rep, "tag")
        ),
        round_id=cell.rep,
    )
    ipda_bytes = {}
    for slices in cell.param("slice_counts"):
        outcome = IpdaProtocol(IpdaConfig(slices=slices)).run_round(
            topology,
            readings,
            streams=RngStreams(
                derive_seed(seed, EXPERIMENT, size, cell.rep, "ipda", slices)
            ),
            round_id=cell.rep,
        )
        ipda_bytes[slices] = float(outcome.bytes_sent)
    return {"tag": float(tag_outcome.bytes_sent), "ipda": ipda_bytes}


def reduce(cells: Sequence[Cell], results: Sequence[object]) -> ExperimentTable:
    """One row per size: mean bytes and measured/analytic ratios."""
    slice_counts = cells[0].param("slice_counts") if cells else ()
    columns = ["nodes", "tag_bytes"]
    for slices in slice_counts:
        columns.extend([f"ipda_l{slices}_bytes", f"ratio_l{slices}"])
    table = ExperimentTable(
        name="Figure 7: bandwidth consumption iPDA vs TAG", columns=columns
    )

    for key, entries in grouped(cells, results).items():
        (size,) = key
        tag_mean, _ = mean_std([result["tag"] for _cell, result in entries])
        row: list = [size, tag_mean]
        for slices in slice_counts:
            ipda_mean, _ = mean_std(
                [result["ipda"][slices] for _cell, result in entries]
            )
            row.extend([ipda_mean, ipda_mean / tag_mean])
        table.add_row(*row)

    ratios = ", ".join(
        f"l={slices}: {overhead_ratio(slices):.2f}" for slices in slice_counts
    )
    table.add_note(f"analytic ratios (2l+1)/2 -> {ratios}")
    table.add_note(
        "sub-analytic ratios at N<300 reflect non-participation in "
        "sparse networks (Section IV-B.2)"
    )
    return table


SPEC = CellExperiment(
    EXPERIMENT, cells, run_cell, reduce,
    description="Figure 7: bandwidth on the air, iPDA (l=1,2) vs TAG",
)


def run(
    sizes: Sequence[int] = PAPER_SIZES,
    *,
    slice_counts: Sequence[int] = (1, 2),
    repetitions: int = 3,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentTable:
    """Regenerate Figure 7."""
    from ..runner import execute

    return execute(
        SPEC,
        jobs=jobs,
        sizes=sizes,
        slice_counts=tuple(slice_counts),
        repetitions=repetitions,
        seed=seed,
    )
