"""Energy cost and network-lifetime comparison (beyond the paper).

The paper motivates aggregation with energy savings and network
lifetime (Section I) but reports only bandwidth; this experiment prices
each protocol's rounds under the first-order radio model and projects
the rounds-until-first-death lifetime for a AA-scale battery budget.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..analysis.energy import price_round
from ..core.config import IpdaConfig
from ..protocols.ipda import IpdaProtocol
from ..protocols.tag import TagProtocol
from ..rng import RngStreams, derive_seed
from ..workloads.readings import count_readings
from .common import (
    Cell,
    CellExperiment,
    ExperimentTable,
    cached_deployment,
    grouped,
    make_cell,
    mean_std,
)

__all__ = ["run", "SPEC"]

EXPERIMENT = "energy"

#: 2x AA alkaline cells, the classic mote budget (~2 * 9 kJ usable).
DEFAULT_BATTERY_J = 18_000.0


def cells(
    *,
    node_count: int = 400,
    slice_counts: Sequence[int] = (1, 2),
    repetitions: int = 3,
    battery_joules: float = DEFAULT_BATTERY_J,
    seed: int = 0,
) -> List[Cell]:
    """One cell per (protocol variant, repetition)."""
    variants = [("tag", 0)]
    variants.extend(("ipda", int(slices)) for slices in slice_counts)
    return [
        make_cell(
            EXPERIMENT,
            variant,
            rep,
            node_count=int(node_count),
            battery_joules=float(battery_joules),
            seed=int(seed),
        )
        for variant in variants
        for rep in range(repetitions)
    ]


def run_cell(cell: Cell) -> Tuple[float, float, float]:
    """Price one round: (total mJ, peak node uJ, lifetime rounds).

    All variants price rounds on the same deployment (the lifetime
    comparison is per-terrain) but each (variant, rep) draws from its
    own derived stream seed — the old harness reused ``seed + rep``
    across protocols, correlating their channel randomness.
    """
    protocol_name, slices = cell.key
    seed = cell.param("seed")
    node_count = cell.param("node_count")
    topology = cached_deployment(
        node_count,
        seed=derive_seed(seed, EXPERIMENT, node_count, "deploy"),
        base_station_center=True,
    )
    readings = count_readings(topology)
    if protocol_name == "tag":
        protocol = TagProtocol()
    else:
        protocol = IpdaProtocol(IpdaConfig(slices=slices))
    outcome = protocol.run_round(
        topology,
        readings,
        streams=RngStreams(
            derive_seed(
                seed, EXPERIMENT, node_count, cell.rep, protocol_name, slices
            )
        ),
        round_id=cell.rep,
    )
    report = price_round(outcome.stats["sent_bytes_by_node"], topology)
    return (
        report.total_joules * 1e3,
        report.peak_joules * 1e6,
        float(report.rounds_until_depletion(cell.param("battery_joules"))),
    )


def reduce(cells: Sequence[Cell], results: Sequence[object]) -> ExperimentTable:
    """One row per protocol variant, means over repetitions."""
    table = ExperimentTable(
        name="Energy: per-round cost and projected lifetime",
        columns=[
            "protocol",
            "total_mJ_per_round",
            "peak_node_uJ",
            "rounds_until_first_death",
        ],
    )
    for key, entries in grouped(cells, results).items():
        protocol_name, slices = key
        label = "tag" if protocol_name == "tag" else f"ipda l={slices}"
        table.add_row(
            label,
            mean_std([result[0] for _cell, result in entries])[0],
            mean_std([result[1] for _cell, result in entries])[0],
            mean_std([result[2] for _cell, result in entries])[0],
        )
    battery_joules = (
        cells[0].param("battery_joules") if cells else DEFAULT_BATTERY_J
    )
    table.add_note(
        "first-order radio model (50 nJ/bit + 100 pJ/bit/m^2 at full "
        f"range); battery budget {battery_joules / 1000:.0f} kJ"
    )
    table.add_note(
        "energy tracks the Figure 7 byte ratio: privacy+integrity cost "
        "(2l+1)/2 x TAG in lifetime too"
    )
    return table


SPEC = CellExperiment(
    EXPERIMENT, cells, run_cell, reduce,
    description="Energy per round and projected network lifetime, "
                "TAG vs iPDA",
)


def run(
    *,
    node_count: int = 400,
    slice_counts: Sequence[int] = (1, 2),
    repetitions: int = 3,
    battery_joules: float = DEFAULT_BATTERY_J,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentTable:
    """Per-round energy and lifetime, TAG vs iPDA."""
    from ..runner import execute

    return execute(
        SPEC,
        jobs=jobs,
        node_count=node_count,
        slice_counts=tuple(slice_counts),
        repetitions=repetitions,
        battery_joules=battery_joules,
        seed=seed,
    )
