"""Energy cost and network-lifetime comparison (beyond the paper).

The paper motivates aggregation with energy savings and network
lifetime (Section I) but reports only bandwidth; this experiment prices
each protocol's rounds under the first-order radio model and projects
the rounds-until-first-death lifetime for a AA-scale battery budget.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.energy import price_round
from ..core.config import IpdaConfig
from ..net.topology import random_deployment
from ..protocols.ipda import IpdaProtocol
from ..protocols.tag import TagProtocol
from ..rng import RngStreams
from ..workloads.readings import count_readings
from .common import ExperimentTable, mean_std

__all__ = ["run"]

#: 2x AA alkaline cells, the classic mote budget (~2 * 9 kJ usable).
DEFAULT_BATTERY_J = 18_000.0


def run(
    *,
    node_count: int = 400,
    slice_counts: Sequence[int] = (1, 2),
    repetitions: int = 3,
    battery_joules: float = DEFAULT_BATTERY_J,
    seed: int = 0,
) -> ExperimentTable:
    """Per-round energy and lifetime, TAG vs iPDA."""
    table = ExperimentTable(
        name="Energy: per-round cost and projected lifetime",
        columns=[
            "protocol",
            "total_mJ_per_round",
            "peak_node_uJ",
            "rounds_until_first_death",
        ],
    )
    topology = random_deployment(node_count, seed=seed)
    protocols = [("tag", TagProtocol())]
    protocols.extend(
        (f"ipda l={slices}", IpdaProtocol(IpdaConfig(slices=slices)))
        for slices in slice_counts
    )
    for name, protocol in protocols:
        totals, peaks, lifetimes = [], [], []
        for rep in range(repetitions):
            readings = count_readings(topology)
            outcome = protocol.run_round(
                topology,
                readings,
                streams=RngStreams(seed + rep),
                round_id=rep,
            )
            report = price_round(
                outcome.stats["sent_bytes_by_node"], topology
            )
            totals.append(report.total_joules * 1e3)
            peaks.append(report.peak_joules * 1e6)
            lifetimes.append(
                float(report.rounds_until_depletion(battery_joules))
            )
        table.add_row(
            name,
            mean_std(totals)[0],
            mean_std(peaks)[0],
            mean_std(lifetimes)[0],
        )
    table.add_note(
        "first-order radio model (50 nJ/bit + 100 pJ/bit/m^2 at full "
        f"range); battery budget {battery_joules / 1000:.0f} kJ"
    )
    table.add_note(
        "energy tracks the Figure 7 byte ratio: privacy+integrity cost "
        "(2l+1)/2 x TAG in lifetime too"
    )
    return table
