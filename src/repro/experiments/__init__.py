"""Experiment harness: one module per table/figure, plus ablations."""

from . import (
    ablations,
    collusion_study,
    energy,
    fault_sweep,
    fig1_trees,
    fig4_messages,
    fig5_privacy,
    fig6_threshold,
    fig7_overhead,
    fig8_coverage_accuracy,
    latency,
    table1_density,
)
from .common import PAPER_SIZES, ExperimentTable, mean_std

__all__ = [
    "ExperimentTable",
    "mean_std",
    "PAPER_SIZES",
    "table1_density",
    "fig1_trees",
    "fig4_messages",
    "fig5_privacy",
    "fig6_threshold",
    "fig7_overhead",
    "fig8_coverage_accuracy",
    "ablations",
    "energy",
    "latency",
    "collusion_study",
    "fault_sweep",
]
