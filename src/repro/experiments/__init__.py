"""Experiment harness: one module per table/figure, plus ablations.

Every experiment module exposes a :class:`~repro.experiments.common.
CellExperiment` spec (``SPEC``, or ``SPECS`` for modules bundling
several); ``SPECS`` below is the name → spec registry the parallel
runner (:mod:`repro.runner`) uses to resolve cells inside worker
processes.
"""

from . import (
    ablations,
    collusion_study,
    energy,
    fault_sweep,
    fig1_trees,
    fig4_messages,
    fig5_privacy,
    fig6_threshold,
    fig7_overhead,
    fig8_coverage_accuracy,
    latency,
    table1_density,
)
from .common import PAPER_SIZES, CellExperiment, ExperimentTable, mean_std

__all__ = [
    "ExperimentTable",
    "CellExperiment",
    "mean_std",
    "PAPER_SIZES",
    "SPECS",
    "table1_density",
    "fig1_trees",
    "fig4_messages",
    "fig5_privacy",
    "fig6_threshold",
    "fig7_overhead",
    "fig8_coverage_accuracy",
    "ablations",
    "energy",
    "latency",
    "collusion_study",
    "fault_sweep",
]

_MODULES = (
    table1_density,
    fig1_trees,
    fig4_messages,
    fig5_privacy,
    fig6_threshold,
    fig7_overhead,
    fig8_coverage_accuracy,
    ablations,
    energy,
    latency,
    collusion_study,
    fault_sweep,
)


def _collect_specs():
    registry = {}
    for module in _MODULES:
        specs = getattr(module, "SPECS", None)
        if specs is None:
            specs = (module.SPEC,)
        for spec in specs:
            registry[spec.name] = spec
    return registry


#: Name -> :class:`CellExperiment` for every built-in experiment.
SPECS = _collect_specs()
