"""Figure 5 — capacity of privacy-preservation.

Plots (as a table) the average disclosure probability
``P_disclose(p_x)`` over random deployments with average degree ≈ 7 and
≈ 17, for ``l = 2`` and ``l = 3`` — the four series of Figure 5 — and
optionally validates the closed form against a Monte-Carlo run of the
actual eavesdropping attack on recorded slice flows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.density import within_range_probability
from ..analysis.privacy import (
    average_disclosure_probability,
    node_disclosure_probability,
)
from ..attacks.eavesdropper import LinkEavesdropper
from ..core.config import IpdaConfig
from ..core.pipeline import run_lossless_round
from ..net.topology import PAPER_AREA_M, PAPER_RANGE_M, random_deployment
from ..rng import RngStreams
from .common import ExperimentTable

__all__ = ["run", "nodes_for_degree", "PAPER_PX_SWEEP"]

#: Figure 5's x-axis: p_x from 0.01 to 0.1.
PAPER_PX_SWEEP = tuple(round(0.01 * k, 2) for k in range(1, 11))

#: The two densities Figure 5 plots.
PAPER_DEGREES = (7, 17)


def nodes_for_degree(
    target_degree: float,
    *,
    area_side: float = PAPER_AREA_M,
    radio_range: float = PAPER_RANGE_M,
) -> int:
    """Network size whose expected average degree is ``target_degree``."""
    p = within_range_probability(radio_range, area_side)
    return int(round(target_degree / p)) + 1


def run(
    px_values: Sequence[float] = PAPER_PX_SWEEP,
    *,
    degrees: Sequence[int] = PAPER_DEGREES,
    slice_counts: Sequence[int] = (2, 3),
    seed: int = 0,
    monte_carlo_trials: Optional[int] = 0,
) -> ExperimentTable:
    """Regenerate Figure 5.

    With ``monte_carlo_trials > 0``, each row also carries the
    disclosure rate measured by running the concrete eavesdropping
    attack that many times per point (slow; benchmarks use a few).
    """
    columns = ["px"]
    series = []
    for degree in degrees:
        for slices in slice_counts:
            label = f"deg{degree}_l{slices}"
            columns.append(f"analytic_{label}")
            if monte_carlo_trials:
                columns.append(f"measured_{label}")
            series.append((degree, slices, label))
    for slices in slice_counts:
        columns.append(f"paperform_l{slices}")

    table = ExperimentTable(
        name="Figure 5: capacity of privacy-preservation", columns=columns
    )

    topologies = {}
    rounds = {}
    for degree, slices, _label in series:
        key = (degree, slices)
        if key in topologies:
            continue
        node_count = nodes_for_degree(degree)
        topology = random_deployment(node_count, seed=seed + degree)
        topologies[key] = topology
        if monte_carlo_trials:
            readings = {i: 1 for i in range(1, topology.node_count)}
            rounds[key] = run_lossless_round(
                topology,
                readings,
                IpdaConfig(slices=slices),
                rng=RngStreams(seed + degree).get("fig5", slices),
                record_flows=True,
            )

    for px in px_values:
        row: list = [px]
        for degree, slices, _label in series:
            topology = topologies[(degree, slices)]
            row.append(
                average_disclosure_probability(topology, px, slices)
            )
            if monte_carlo_trials:
                attacker = LinkEavesdropper(
                    px, seed=seed + int(px * 1000) + slices
                )
                row.append(
                    attacker.monte_carlo_disclosure(
                        topology,
                        rounds[(degree, slices)],
                        trials=monte_carlo_trials,
                    )
                )
        for slices in slice_counts:
            row.append(node_disclosure_probability(px, slices, 0.0))
        table.add_row(*row)

    table.add_note(
        "analytic = Eq. 11 averaged over the deployment; "
        "measured = Monte-Carlo of the concrete link-eavesdropping attack"
    )
    table.add_note(
        "paperform = Eq. 11 with E[n_l] = 0 (p_x^(l-1) dominating) — the "
        "variant whose magnitudes match the printed Figure 5 y-axis; see "
        "EXPERIMENTS.md"
    )
    table.add_note(
        f"degree 7 -> N={nodes_for_degree(7)}, "
        f"degree 17 -> N={nodes_for_degree(17)} on the paper's field"
    )
    return table
