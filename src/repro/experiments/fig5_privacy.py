"""Figure 5 — capacity of privacy-preservation.

Plots (as a table) the average disclosure probability
``P_disclose(p_x)`` over random deployments with average degree ≈ 7 and
≈ 17, for ``l = 2`` and ``l = 3`` — the four series of Figure 5 — and
optionally validates the closed form against a Monte-Carlo run of the
actual eavesdropping attack on recorded slice flows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.density import within_range_probability
from ..analysis.privacy import (
    average_disclosure_probability,
    node_disclosure_probability,
)
from ..attacks.eavesdropper import LinkEavesdropper
from ..core.config import IpdaConfig
from ..core.pipeline import run_lossless_round
from ..net.topology import PAPER_AREA_M, PAPER_RANGE_M, random_deployment
from ..rng import RngStreams, derive_seed
from .common import (
    Cell,
    CellExperiment,
    ExperimentTable,
    grouped,
    make_cell,
)

__all__ = ["run", "nodes_for_degree", "PAPER_PX_SWEEP", "SPEC"]

EXPERIMENT = "fig5"

#: Figure 5's x-axis: p_x from 0.01 to 0.1.
PAPER_PX_SWEEP = tuple(round(0.01 * k, 2) for k in range(1, 11))

#: The two densities Figure 5 plots.
PAPER_DEGREES = (7, 17)


def nodes_for_degree(
    target_degree: float,
    *,
    area_side: float = PAPER_AREA_M,
    radio_range: float = PAPER_RANGE_M,
) -> int:
    """Network size whose expected average degree is ``target_degree``."""
    p = within_range_probability(radio_range, area_side)
    return int(round(target_degree / p)) + 1


def cells(
    px_values: Sequence[float] = PAPER_PX_SWEEP,
    *,
    degrees: Sequence[int] = PAPER_DEGREES,
    slice_counts: Sequence[int] = (2, 3),
    seed: int = 0,
    monte_carlo_trials: Optional[int] = 0,
) -> List[Cell]:
    """One cell per ``(degree, slices)`` series over the whole px sweep."""
    return [
        make_cell(
            EXPERIMENT,
            (int(degree), int(slices)),
            0,
            px_values=tuple(float(px) for px in px_values),
            seed=int(seed),
            monte_carlo_trials=int(monte_carlo_trials or 0),
        )
        for degree in degrees
        for slices in slice_counts
    ]


def run_cell(cell: Cell) -> Dict[str, object]:
    """Evaluate one (degree, slices) series at every px.

    The deployment seed depends only on the degree, so the two slice
    counts at the same density are evaluated on the same terrain (as in
    the figure); attacker seeds are derived per (degree, slices, px) —
    the old harness used ``seed + int(px*1000) + slices``, which
    collided across densities.
    """
    degree, slices = cell.key
    seed = cell.param("seed")
    trials = cell.param("monte_carlo_trials")
    node_count = nodes_for_degree(degree)
    topology = random_deployment(
        node_count, seed=derive_seed(seed, EXPERIMENT, degree, "deploy")
    )
    round_record = None
    if trials:
        readings = {i: 1 for i in range(1, topology.node_count)}
        round_record = run_lossless_round(
            topology,
            readings,
            IpdaConfig(slices=slices),
            rng=RngStreams(
                derive_seed(seed, EXPERIMENT, degree, slices, "round")
            ).get("fig5", slices),
            record_flows=True,
        )

    analytic: List[float] = []
    measured: List[float] = []
    for px in cell.param("px_values"):
        analytic.append(average_disclosure_probability(topology, px, slices))
        if trials:
            attacker = LinkEavesdropper(
                px,
                seed=derive_seed(
                    seed, EXPERIMENT, degree, slices, "attack", str(px)
                ),
            )
            measured.append(
                attacker.monte_carlo_disclosure(
                    topology, round_record, trials=trials
                )
            )
    return {
        "analytic": analytic,
        "measured": measured,
        "node_count": node_count,
    }


def reduce(cells: Sequence[Cell], results: Sequence[object]) -> ExperimentTable:
    """Interleave the per-series sweeps into the Figure 5 table."""
    if not cells:
        return ExperimentTable(name="Figure 5", columns=["px"])
    px_values = cells[0].param("px_values")
    trials = cells[0].param("monte_carlo_trials")
    slice_counts = []
    for cell in cells:
        if cell.key[1] not in slice_counts:
            slice_counts.append(cell.key[1])

    columns = ["px"]
    for cell in cells:
        degree, slices = cell.key
        label = f"deg{degree}_l{slices}"
        columns.append(f"analytic_{label}")
        if trials:
            columns.append(f"measured_{label}")
    columns.extend(f"paperform_l{slices}" for slices in slice_counts)

    table = ExperimentTable(
        name="Figure 5: capacity of privacy-preservation", columns=columns
    )
    series = list(grouped(cells, results).values())
    for index, px in enumerate(px_values):
        row: list = [px]
        for entries in series:
            (_cell, result), = entries
            row.append(result["analytic"][index])
            if trials:
                row.append(result["measured"][index])
        for slices in slice_counts:
            row.append(node_disclosure_probability(px, slices, 0.0))
        table.add_row(*row)

    table.add_note(
        "analytic = Eq. 11 averaged over the deployment; "
        "measured = Monte-Carlo of the concrete link-eavesdropping attack"
    )
    table.add_note(
        "paperform = Eq. 11 with E[n_l] = 0 (p_x^(l-1) dominating) — the "
        "variant whose magnitudes match the printed Figure 5 y-axis; see "
        "EXPERIMENTS.md"
    )
    degrees = []
    for cell in cells:
        if cell.key[0] not in degrees:
            degrees.append(cell.key[0])
    table.add_note(
        ", ".join(
            f"degree {degree} -> N={nodes_for_degree(degree)}"
            for degree in degrees
        )
        + " on the paper's field"
    )
    return table


SPEC = CellExperiment(
    EXPERIMENT, cells, run_cell, reduce,
    description="Figure 5: disclosure probability vs link compromise "
                "(privacy capacity)",
)


def run(
    px_values: Sequence[float] = PAPER_PX_SWEEP,
    *,
    degrees: Sequence[int] = PAPER_DEGREES,
    slice_counts: Sequence[int] = (2, 3),
    seed: int = 0,
    monte_carlo_trials: Optional[int] = 0,
    jobs: int = 1,
) -> ExperimentTable:
    """Regenerate Figure 5.

    With ``monte_carlo_trials > 0``, each row also carries the
    disclosure rate measured by running the concrete eavesdropping
    attack that many times per point (slow; benchmarks use a few).
    """
    from ..runner import execute

    return execute(
        SPEC,
        jobs=jobs,
        px_values=tuple(px_values),
        degrees=tuple(degrees),
        slice_counts=tuple(slice_counts),
        seed=seed,
        monte_carlo_trials=monte_carlo_trials,
    )
