"""Collusion exposure study (the paper's declared future work).

Sweeps the size of a coalition of compromised nodes that pool every
slice they legitimately receive, measuring the fraction of honest
readings reconstructed — for each slice count ``l``.  Quantifies the
gap the paper leaves open in Section VI and the mitigation available
inside the existing design (raise ``l``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..attacks.collusion import coalition_disclosure, random_coalition
from ..core.config import IpdaConfig
from ..core.pipeline import run_lossless_round
from ..rng import RngStreams, derive_seed
from ..workloads.readings import uniform_readings
from .common import (
    Cell,
    CellExperiment,
    ExperimentTable,
    cached_deployment,
    grouped,
    make_cell,
    mean_std,
)

__all__ = ["run", "SPEC"]

EXPERIMENT = "ablation-collusion"


def cells(
    *,
    node_count: int = 400,
    coalition_sizes: Sequence[int] = (10, 40, 80, 160),
    slice_counts: Sequence[int] = (2, 3),
    repetitions: int = 3,
    seed: int = 0,
) -> List[Cell]:
    """One cell per slice count; the coalition sweep runs inside it."""
    return [
        make_cell(
            EXPERIMENT,
            (int(slices),),
            0,
            node_count=int(node_count),
            coalition_sizes=tuple(int(s) for s in coalition_sizes),
            repetitions=int(repetitions),
            seed=int(seed),
        )
        for slices in slice_counts
    ]


def run_cell(cell: Cell) -> Dict[int, List[float]]:
    """Record one round at this l, then replay every coalition on it.

    Deployment, readings, and the sampled coalitions are derived
    without the slice count in their labels, so every l is attacked by
    the *same* coalitions on the same data — the columns differ only in
    the defence.
    """
    (slices,) = cell.key
    seed = cell.param("seed")
    node_count = cell.param("node_count")
    topology = cached_deployment(
        node_count, seed=derive_seed(seed, EXPERIMENT, node_count, "deploy")
    )
    readings = uniform_readings(
        topology,
        np.random.default_rng(
            derive_seed(seed, EXPERIMENT, node_count, "readings")
        ),
        low=0,
        high=500,
    )
    round_record = run_lossless_round(
        topology,
        readings,
        IpdaConfig(slices=slices),
        rng=RngStreams(
            derive_seed(seed, EXPERIMENT, node_count, "round", slices)
        ).get("collusion", slices),
        record_flows=True,
    )
    out: Dict[int, List[float]] = {}
    for size in cell.param("coalition_sizes"):
        rates = []
        for rep in range(cell.param("repetitions")):
            coalition = random_coalition(
                topology,
                size,
                np.random.default_rng(
                    derive_seed(
                        seed, EXPERIMENT, node_count, "coalition", size, rep
                    )
                ),
                exclude={0},
            )
            rates.append(
                coalition_disclosure(round_record, coalition).disclosure_rate
            )
        out[size] = rates
    return out


def reduce(cells: Sequence[Cell], results: Sequence[object]) -> ExperimentTable:
    """One row per coalition size, one disclosure column per l."""
    slice_counts = [cell.key[0] for cell in cells]
    columns = ["coalition_size", "coalition_fraction"]
    columns.extend(f"disclosed_l{slices}" for slices in slice_counts)
    table = ExperimentTable(
        name="Collusion: coalition size vs disclosure (future work)",
        columns=columns,
    )
    if cells:
        node_count = cells[0].param("node_count")
        series = list(grouped(cells, results).values())
        for size in cells[0].param("coalition_sizes"):
            row: list = [size, size / (node_count - 1)]
            for entries in series:
                (_cell, result), = entries
                row.append(mean_std(result[size])[0])
            table.add_row(*row)
    table.add_note(
        "a coalition learns a reading when one complete cut landed on "
        "its members; no link breaking involved — the collusive threat "
        "Section VI defers to future work"
    )
    table.add_note("mitigation inside the design: raise l (compare columns)")
    return table


SPEC = CellExperiment(
    EXPERIMENT, cells, run_cell, reduce,
    description="Collusion study: disclosure under pooled coalition "
                "keys",
)


def run(
    *,
    node_count: int = 400,
    coalition_sizes: Sequence[int] = (10, 40, 80, 160),
    slice_counts: Sequence[int] = (2, 3),
    repetitions: int = 3,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentTable:
    """Disclosure rate vs coalition size, per slice count."""
    from ..runner import execute

    return execute(
        SPEC,
        jobs=jobs,
        node_count=node_count,
        coalition_sizes=tuple(coalition_sizes),
        slice_counts=tuple(slice_counts),
        repetitions=repetitions,
        seed=seed,
    )
