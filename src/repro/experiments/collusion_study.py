"""Collusion exposure study (the paper's declared future work).

Sweeps the size of a coalition of compromised nodes that pool every
slice they legitimately receive, measuring the fraction of honest
readings reconstructed — for each slice count ``l``.  Quantifies the
gap the paper leaves open in Section VI and the mitigation available
inside the existing design (raise ``l``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..attacks.collusion import coalition_disclosure, random_coalition
from ..core.config import IpdaConfig
from ..core.pipeline import run_lossless_round
from ..net.topology import random_deployment
from ..rng import RngStreams
from ..workloads.readings import uniform_readings
from .common import ExperimentTable, mean_std

__all__ = ["run"]


def run(
    *,
    node_count: int = 400,
    coalition_sizes: Sequence[int] = (10, 40, 80, 160),
    slice_counts: Sequence[int] = (2, 3),
    repetitions: int = 3,
    seed: int = 0,
) -> ExperimentTable:
    """Disclosure rate vs coalition size, per slice count."""
    columns = ["coalition_size", "coalition_fraction"]
    columns.extend(f"disclosed_l{slices}" for slices in slice_counts)
    table = ExperimentTable(
        name="Collusion: coalition size vs disclosure (future work)",
        columns=columns,
    )
    topology = random_deployment(node_count, seed=seed)
    readings = uniform_readings(
        topology, np.random.default_rng(seed), low=0, high=500
    )
    rounds = {
        slices: run_lossless_round(
            topology,
            readings,
            IpdaConfig(slices=slices),
            rng=RngStreams(seed).get("collusion", slices),
            record_flows=True,
        )
        for slices in slice_counts
    }
    for size in coalition_sizes:
        row: list = [size, size / (node_count - 1)]
        for slices in slice_counts:
            rates = []
            for rep in range(repetitions):
                rng = np.random.default_rng(seed + 31 * rep + size)
                coalition = random_coalition(
                    topology, size, rng, exclude={0}
                )
                report = coalition_disclosure(rounds[slices], coalition)
                rates.append(report.disclosure_rate)
            row.append(mean_std(rates)[0])
        table.add_row(*row)
    table.add_note(
        "a coalition learns a reading when one complete cut landed on "
        "its members; no link breaking involved — the collusive threat "
        "Section VI defers to future work"
    )
    table.add_note("mitigation inside the design: raise l (compare columns)")
    return table
