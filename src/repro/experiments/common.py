"""Experiment-harness plumbing: result tables, sweeps, CSV output.

Every experiment module exposes ``run(...) -> ExperimentTable`` and the
table renders both as an aligned text table (what the CLI prints and
what EXPERIMENTS.md embeds) and as CSV.
"""

from __future__ import annotations

import csv
import io
import math
import statistics
from dataclasses import dataclass, field
from typing import List, Sequence

from ..errors import ConfigurationError

__all__ = ["ExperimentTable", "mean_std", "mean_ci", "PAPER_SIZES"]

#: Network sizes of the paper's simulation sweeps (Section IV-B).
PAPER_SIZES = (200, 300, 400, 500, 600)


def mean_std(values: Sequence[float]) -> tuple:
    """Return ``(mean, sample std)``; std is 0 for fewer than 2 values."""
    if not values:
        raise ConfigurationError("mean_std of no values")
    mean = sum(values) / len(values)
    std = statistics.stdev(values) if len(values) > 1 else 0.0
    return mean, std


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> tuple:
    """Return ``(mean, half-width)`` of a Student-t confidence interval.

    With fewer than two samples the half-width is 0 (no spread
    information).  Used by experiments that report error bars.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    mean, std = mean_std(values)
    n = len(values)
    if n < 2 or std == 0.0:
        return mean, 0.0
    from scipy import stats as scipy_stats

    t_value = scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1)
    return mean, t_value * std / math.sqrt(n)


@dataclass
class ExperimentTable:
    """A named table of experiment results.

    ``rows`` hold raw values (numbers or strings); formatting decisions
    are deferred to rendering.
    """

    name: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append a row; must match the column count."""
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        """Attach a free-form footnote rendered under the table."""
        self.notes.append(note)

    def column(self, name: str) -> List[object]:
        """Extract one column by name."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise ConfigurationError(
                f"no column {name!r} in {self.columns}"
            ) from None
        return [row[index] for row in self.rows]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    @staticmethod
    def _format_cell(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value != value:  # NaN
                return "nan"
            if value == 0:
                return "0"
            magnitude = abs(value)
            if magnitude >= 1000 or magnitude < 0.001:
                return f"{value:.3e}"
            return f"{value:.4f}".rstrip("0").rstrip(".")
        return str(value)

    def to_text(self) -> str:
        """Aligned plain-text rendering."""
        cells = [[self._format_cell(c) for c in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.name} =="]
        header = "  ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering (header + raw values)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def write_csv(self, path: str) -> None:
        """Write the CSV rendering to ``path``."""
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


def geometric_factor(a: float, b: float) -> float:
    """``a / b`` guarding division by zero (returns inf)."""
    if b == 0:
        return math.inf
    return a / b
