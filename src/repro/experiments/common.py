"""Experiment-harness plumbing: cells, result tables, sweeps, CSV output.

Every experiment module exposes two layers:

* the classic ``run(...) -> ExperimentTable`` entry point (what the CLI
  and the tests call), and
* the cell interface underneath it — ``cells(...)`` enumerating one
  :class:`Cell` per ``(experiment, sweep key, repetition)``,
  ``run_cell(cell)`` computing that cell in isolation, and
  ``reduce(cells, results)`` folding the per-cell results back into the
  table — bundled as a :class:`CellExperiment` spec.

The cell layer is what :mod:`repro.runner` shards across worker
processes.  The determinism contract: ``run_cell`` must be a pure
function of its cell (every seed it uses is derived inside the cell via
:func:`repro.rng.derive_seed`), and ``reduce`` must consume results in
cell-enumeration order.  Under that contract the parallel output is
byte-identical to the sequential output for any worker count.

The table renders both as an aligned text table (what the CLI prints
and what EXPERIMENTS.md embeds) and as CSV.
"""

from __future__ import annotations

import csv
import io
import math
import os
import statistics
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = [
    "Cell",
    "CellExperiment",
    "ExperimentTable",
    "cached_deployment",
    "deployment_cache_counters",
    "grouped",
    "make_cell",
    "mean_std",
    "mean_ci",
    "PAPER_SIZES",
]

#: Network sizes of the paper's simulation sweeps (Section IV-B).
PAPER_SIZES = (200, 300, 400, 500, 600)

_MISSING = object()


# ----------------------------------------------------------------------
# The cell interface (what repro.runner shards across workers)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Cell:
    """One shardable unit of an experiment sweep.

    ``experiment`` names the registered :class:`CellExperiment`, ``key``
    is the sweep coordinate (e.g. ``(size,)`` or ``(protocol, l)``),
    ``rep`` the repetition index, and ``params`` a canonically sorted
    tuple of extra keyword parameters (kept as a tuple so cells stay
    hashable and cheaply picklable for the process pool).
    """

    experiment: str
    key: Tuple[object, ...]
    rep: int
    params: Tuple[Tuple[str, object], ...] = ()

    def param(self, name: str, default: object = _MISSING) -> object:
        """Look up one extra parameter; raises unless a default is given."""
        for key, value in self.params:
            if key == name:
                return value
        if default is not _MISSING:
            return default
        raise ConfigurationError(
            f"cell {self.label} has no parameter {name!r}; "
            f"carries: {[key for key, _value in self.params]}"
        )

    @property
    def label(self) -> str:
        """Short human-readable identifier (progress/debug output)."""
        key = "/".join(str(part) for part in self.key)
        return f"{self.experiment}[{key}#{self.rep}]"


def make_cell(
    experiment: str, key: Sequence[object], rep: int, **params: object
) -> Cell:
    """Build a :class:`Cell` with canonically ordered parameters."""
    return Cell(
        experiment=experiment,
        key=tuple(key),
        rep=int(rep),
        params=tuple(sorted(params.items())),
    )


@dataclass(frozen=True)
class CellExperiment:
    """The shardable description of one experiment.

    ``cells(**kwargs)`` enumerates the sweep in deterministic order;
    ``run_cell(cell)`` computes one cell from nothing but the cell
    (it must derive every seed it uses from the cell's parameters);
    ``reduce(cells, results)`` folds the results — aligned index-for-
    index with the cells — into the final :class:`ExperimentTable`.
    ``description`` is the one-liner ``repro list`` prints.
    """

    name: str
    cells: Callable[..., List[Cell]]
    run_cell: Callable[[Cell], object]
    reduce: Callable[[Sequence[Cell], Sequence[object]], "ExperimentTable"]
    description: str = ""


def grouped(
    cells: Sequence[Cell], results: Sequence[object]
) -> "OrderedDict[Tuple[object, ...], List[Tuple[Cell, object]]]":
    """Group ``(cell, result)`` pairs by cell key, preserving order.

    The standard first step of a ``reduce``: one group per sweep
    coordinate, repetitions inside each group in enumeration order.
    """
    if len(cells) != len(results):
        raise ConfigurationError(
            f"{len(results)} results for {len(cells)} cells"
        )
    groups: "OrderedDict[Tuple[object, ...], List[Tuple[Cell, object]]]" = (
        OrderedDict()
    )
    for cell, result in zip(cells, results):
        groups.setdefault(cell.key, []).append((cell, result))
    return groups


# ----------------------------------------------------------------------
# Per-worker deployment cache
# ----------------------------------------------------------------------
#: (node_count, seed, extra kwargs) -> Topology, LRU-bounded.  Worker
#: processes each hold their own copy (module globals are per-process),
#: so iPDA and TAG rounds of the same cell — and neighbouring cells that
#: land on the same worker — reuse one topology instead of rebuilding
#: it per protocol.  Correctness never depends on a hit: the seed fully
#: determines the deployment, so a rebuild is byte-identical.
_DEPLOYMENT_CACHE: "OrderedDict[tuple, object]" = OrderedDict()
_DEPLOYMENT_CACHE_LIMIT = 32
#: Size cap in *cached nodes* (sum of node_count over live entries).
#: Entry count alone doesn't bound memory for a long-lived fleet worker
#: that drifts across sweeps of very different deployment sizes, so the
#: LRU also evicts by total node weight ($REPRO_DEPLOY_CACHE_MAX_NODES
#: overrides; topology memory scales with node count).
_DEPLOYMENT_CACHE_MAX_NODES = 200_000
#: node weight per live cache key (parallel to _DEPLOYMENT_CACHE).
_DEPLOYMENT_CACHE_COST: Dict[tuple, int] = {}
#: Lifetime hit/miss/eviction counters for this process's deployment
#: cache.  The runner samples them around each cell (workers are
#: single-threaded, so per-cell deltas are exact) and folds the totals
#: into the throughput report.
_DEPLOYMENT_CACHE_COUNTERS = {
    "hits": 0,
    "misses": 0,
    "evictions": 0,
    # Deployments whose node weight alone exceeds the cache cap.  They
    # bypass the LRU entirely (caching one would evict everything else
    # and still thrash); a non-zero count in a run report is the signal
    # to raise $REPRO_DEPLOY_CACHE_MAX_NODES for 10^5+-node sweeps.
    "oversized": 0,
}


def _deploy_cache_max_nodes() -> int:
    env = os.environ.get("REPRO_DEPLOY_CACHE_MAX_NODES")
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_DEPLOY_CACHE_MAX_NODES must be an integer, "
                f"got {env!r}"
            ) from None
        if value < 1:
            raise ConfigurationError(
                f"REPRO_DEPLOY_CACHE_MAX_NODES must be >= 1, got {value}"
            )
        return value
    return _DEPLOYMENT_CACHE_MAX_NODES


def deployment_cache_counters() -> Tuple[int, int, int, int]:
    """Cumulative ``(hits, misses, evictions, oversized)`` of this
    process's deployment LRU."""
    return (
        _DEPLOYMENT_CACHE_COUNTERS["hits"],
        _DEPLOYMENT_CACHE_COUNTERS["misses"],
        _DEPLOYMENT_CACHE_COUNTERS["evictions"],
        _DEPLOYMENT_CACHE_COUNTERS["oversized"],
    )


def _evict_deployments() -> None:
    """Pop LRU entries until both the count and node-weight caps hold."""
    max_nodes = _deploy_cache_max_nodes()
    while len(_DEPLOYMENT_CACHE) > 1 and (
        len(_DEPLOYMENT_CACHE) > _DEPLOYMENT_CACHE_LIMIT
        or sum(_DEPLOYMENT_CACHE_COST.values()) > max_nodes
    ):
        evicted_key, _topology = _DEPLOYMENT_CACHE.popitem(last=False)
        _DEPLOYMENT_CACHE_COST.pop(evicted_key, None)
        _DEPLOYMENT_CACHE_COUNTERS["evictions"] += 1


def cached_deployment(node_count: int, *, seed: int, **kwargs):
    """A memoised :func:`repro.net.topology.random_deployment`.

    Topologies are immutable once built, so sharing one instance across
    protocol rounds is safe.
    """
    key = (int(node_count), int(seed), tuple(sorted(kwargs.items())))
    topology = _DEPLOYMENT_CACHE.get(key)
    if topology is None:
        _DEPLOYMENT_CACHE_COUNTERS["misses"] += 1
        from ..net.topology import random_deployment

        topology = random_deployment(node_count, seed=seed, **kwargs)
        if int(node_count) > _deploy_cache_max_nodes():
            # A single deployment bigger than the whole node-weight cap
            # would evict every other entry and be evicted itself on
            # the next insert — caching it is pure thrash.  Hand it
            # back uncached and count it, so run reports surface the
            # misconfiguration instead of hiding it behind evictions.
            _DEPLOYMENT_CACHE_COUNTERS["oversized"] += 1
            return topology
        _DEPLOYMENT_CACHE[key] = topology
        _DEPLOYMENT_CACHE_COST[key] = int(node_count)
        _evict_deployments()
    else:
        _DEPLOYMENT_CACHE_COUNTERS["hits"] += 1
        _DEPLOYMENT_CACHE.move_to_end(key)
    return topology


# ----------------------------------------------------------------------
# Statistics helpers
# ----------------------------------------------------------------------
def _require_finite(values: Sequence[float], who: str) -> None:
    for index, value in enumerate(values):
        if not math.isfinite(value):
            raise ConfigurationError(
                f"{who} got a non-finite value ({value!r} at index "
                f"{index}); refusing to propagate NaN/inf into a table — "
                "filter or fix the producing experiment cell instead"
            )


def mean_std(values: Sequence[float]) -> tuple:
    """Return ``(mean, sample std)``; std is 0 for fewer than 2 values.

    Rejects NaN/inf inputs outright: a non-finite sample silently
    poisons every aggregate downstream, so the producing cell must be
    fixed rather than averaged over.
    """
    if not values:
        raise ConfigurationError("mean_std of no values")
    _require_finite(values, "mean_std")
    mean = sum(values) / len(values)
    std = statistics.stdev(values) if len(values) > 1 else 0.0
    return mean, std


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> tuple:
    """Return ``(mean, half-width)`` of a Student-t confidence interval.

    With fewer than two samples the half-width is 0 (no spread
    information).  Used by experiments that report error bars.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    mean, std = mean_std(values)
    n = len(values)
    if n < 2 or std == 0.0:
        return mean, 0.0
    try:
        from scipy import stats as scipy_stats
    except ImportError as exc:
        raise ConfigurationError(
            "mean_ci needs scipy for the Student-t quantile "
            "(pip install scipy), or report mean_std instead of a "
            "confidence interval"
        ) from exc

    t_value = scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1)
    return mean, t_value * std / math.sqrt(n)


@dataclass
class ExperimentTable:
    """A named table of experiment results.

    ``rows`` hold raw values (numbers or strings); formatting decisions
    are deferred to rendering.  ``meta`` carries out-of-band run facts
    (cell counts, wall-clock, worker count) that the CLI reports but
    that never enter the text/CSV renderings.
    """

    name: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def add_row(self, *values: object) -> None:
        """Append a row; must match the column count."""
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        """Attach a free-form footnote rendered under the table."""
        self.notes.append(note)

    def column(self, name: str) -> List[object]:
        """Extract one column by name."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise ConfigurationError(
                f"no column {name!r} in {self.columns}"
            ) from None
        return [row[index] for row in self.rows]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    @staticmethod
    def _format_cell(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value != value:  # NaN
                return "nan"
            if value == 0:
                return "0"
            magnitude = abs(value)
            if magnitude >= 1000 or magnitude < 0.001:
                return f"{value:.3e}"
            return f"{value:.4f}".rstrip("0").rstrip(".")
        return str(value)

    def to_text(self) -> str:
        """Aligned plain-text rendering."""
        cells = [[self._format_cell(c) for c in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.name} =="]
        header = "  ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering (header + raw values)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def write_csv(self, path: str) -> None:
        """Write the CSV rendering to ``path``."""
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


def geometric_factor(a: float, b: float) -> float:
    """``a / b`` guarding division by zero (returns inf)."""
    if b == 0:
        return math.inf
    return a / b
