"""Figure 4 — per-node message budgets of TAG vs iPDA.

The paper's Figure 4 is a message diagram: TAG nodes send 2 frames per
query (HELLO, result), iPDA nodes ``2l + 1`` (HELLO, ``2l - 1`` slices,
result).  This experiment measures the mean frames transmitted per
participating node on a dense deployment and sets them against the
analytic budgets.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.overhead import ipda_messages_per_node, tag_messages_per_node
from ..core.config import IpdaConfig
from ..net.topology import random_deployment
from ..protocols.ipda import IpdaProtocol
from ..protocols.tag import TagProtocol
from ..rng import RngStreams
from ..workloads.readings import count_readings
from .common import ExperimentTable

__all__ = ["run"]


def run(
    *,
    node_count: int = 500,
    slice_counts: Sequence[int] = (1, 2, 3),
    seed: int = 0,
) -> ExperimentTable:
    """Regenerate Figure 4 as measured per-node frame counts."""
    table = ExperimentTable(
        name="Figure 4: messages per node per query",
        columns=["protocol", "analytic_msgs", "measured_msgs_per_node"],
    )
    topology = random_deployment(node_count, seed=seed)
    readings = count_readings(topology)

    tag_outcome = TagProtocol().run_round(
        topology, readings, streams=RngStreams(seed)
    )
    tag_senders = len(tag_outcome.participants) + 1  # + base station
    table.add_row(
        "tag",
        tag_messages_per_node(),
        tag_outcome.frames_sent / tag_senders,
    )

    for slices in slice_counts:
        outcome = IpdaProtocol(IpdaConfig(slices=slices)).run_round(
            topology, readings, streams=RngStreams(seed)
        )
        senders = len(outcome.participants) + 1
        table.add_row(
            f"ipda l={slices}",
            ipda_messages_per_node(slices),
            outcome.frames_sent / senders,
        )
    table.add_note(
        "measured includes MAC retransmissions and the base station's "
        "HELLOs, so it sits slightly above the analytic budget"
    )
    return table
