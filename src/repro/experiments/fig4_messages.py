"""Figure 4 — per-node message budgets of TAG vs iPDA.

The paper's Figure 4 is a message diagram: TAG nodes send 2 frames per
query (HELLO, result), iPDA nodes ``2l + 1`` (HELLO, ``2l - 1`` slices,
result).  This experiment measures the mean frames transmitted per
participating node on a dense deployment and sets them against the
analytic budgets.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..analysis.overhead import ipda_messages_per_node, tag_messages_per_node
from ..core.config import IpdaConfig
from ..protocols.ipda import IpdaProtocol
from ..protocols.tag import TagProtocol
from ..rng import RngStreams, derive_seed
from ..workloads.readings import count_readings
from .common import (
    Cell,
    CellExperiment,
    ExperimentTable,
    cached_deployment,
    make_cell,
)

__all__ = ["run", "SPEC"]

EXPERIMENT = "fig4"


def cells(
    *,
    node_count: int = 500,
    slice_counts: Sequence[int] = (1, 2, 3),
    seed: int = 0,
) -> List[Cell]:
    """One cell per protocol variant: TAG, then iPDA per slice count."""
    out = [
        make_cell(
            EXPERIMENT, ("tag", 0), 0, node_count=int(node_count),
            seed=int(seed),
        )
    ]
    out.extend(
        make_cell(
            EXPERIMENT, ("ipda", int(slices)), 0,
            node_count=int(node_count), seed=int(seed),
        )
        for slices in slice_counts
    )
    return out


def run_cell(cell: Cell) -> Tuple[float, float]:
    """Run one protocol round; return (analytic, measured) frames/node.

    All variants share one deployment (same derived seed, served by the
    per-worker cache) but each draws from its own derived stream seed —
    reusing one stream across protocols would correlate their MAC
    backoff and slicing randomness.
    """
    protocol_name, slices = cell.key
    node_count = cell.param("node_count")
    seed = cell.param("seed")
    topology = cached_deployment(
        node_count, seed=derive_seed(seed, EXPERIMENT, node_count, "deploy")
    )
    readings = count_readings(topology)
    streams = RngStreams(
        derive_seed(seed, EXPERIMENT, node_count, cell.rep, protocol_name,
                    slices)
    )
    if protocol_name == "tag":
        outcome = TagProtocol().run_round(topology, readings, streams=streams)
        analytic = tag_messages_per_node()
    else:
        outcome = IpdaProtocol(IpdaConfig(slices=slices)).run_round(
            topology, readings, streams=streams
        )
        analytic = ipda_messages_per_node(slices)
    senders = len(outcome.participants) + 1  # + base station
    return analytic, outcome.frames_sent / senders


def reduce(cells: Sequence[Cell], results: Sequence[object]) -> ExperimentTable:
    """One row per protocol variant, in cell order."""
    table = ExperimentTable(
        name="Figure 4: messages per node per query",
        columns=["protocol", "analytic_msgs", "measured_msgs_per_node"],
    )
    for cell, (analytic, measured) in zip(cells, results):
        protocol_name, slices = cell.key
        label = "tag" if protocol_name == "tag" else f"ipda l={slices}"
        table.add_row(label, analytic, measured)
    table.add_note(
        "measured includes MAC retransmissions and the base station's "
        "HELLOs, so it sits slightly above the analytic budget"
    )
    return table


SPEC = CellExperiment(
    EXPERIMENT, cells, run_cell, reduce,
    description="Figure 4: per-node message budgets of TAG vs iPDA",
)


def run(
    *,
    node_count: int = 500,
    slice_counts: Sequence[int] = (1, 2, 3),
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentTable:
    """Regenerate Figure 4 as measured per-node frame counts."""
    from ..runner import execute

    return execute(
        SPEC,
        jobs=jobs,
        node_count=node_count,
        slice_counts=tuple(slice_counts),
        seed=seed,
    )
