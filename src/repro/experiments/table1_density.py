"""Table I — network size vs. average degree.

Reports, for each network size of the paper's sweep, the analytic
expected average degree (two-uniform-points-within-range closed form),
the mean measured degree over seeded random deployments, and the value
printed in the paper.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.density import PAPER_TABLE_I, expected_average_degree
from ..net.topology import random_deployment
from .common import PAPER_SIZES, ExperimentTable, mean_std

__all__ = ["run"]


def run(
    sizes: Sequence[int] = PAPER_SIZES,
    *,
    repetitions: int = 10,
    seed: int = 0,
) -> ExperimentTable:
    """Regenerate Table I."""
    table = ExperimentTable(
        name="Table I: network size vs network density",
        columns=[
            "nodes",
            "analytic_degree",
            "measured_degree",
            "measured_std",
            "paper_degree",
        ],
    )
    for size in sizes:
        measured = []
        for rep in range(repetitions):
            topology = random_deployment(
                size, seed=seed + 1000 * rep + size, base_station_center=False
            )
            measured.append(topology.average_degree())
        mean, std = mean_std(measured)
        table.add_row(
            size,
            expected_average_degree(size),
            mean,
            std,
            PAPER_TABLE_I.get(size, float("nan")),
        )
    table.add_note(
        "analytic = (N-1) * [pi t^2 - 8/3 t^3 + t^4/2], t = range/side"
    )
    return table
