"""Table I — network size vs. average degree.

Reports, for each network size of the paper's sweep, the analytic
expected average degree (two-uniform-points-within-range closed form),
the mean measured degree over seeded random deployments, and the value
printed in the paper.
"""

from __future__ import annotations

from typing import List, Sequence

from ..analysis.density import PAPER_TABLE_I, expected_average_degree
from ..net.topology import random_deployment
from ..rng import derive_seed
from .common import (
    PAPER_SIZES,
    Cell,
    CellExperiment,
    ExperimentTable,
    grouped,
    make_cell,
    mean_std,
)

__all__ = ["run", "SPEC"]

EXPERIMENT = "table1"


def cells(
    sizes: Sequence[int] = PAPER_SIZES,
    *,
    repetitions: int = 10,
    seed: int = 0,
) -> List[Cell]:
    """One cell per ``(size, repetition)``."""
    return [
        make_cell(EXPERIMENT, (int(size),), rep, seed=int(seed))
        for size in sizes
        for rep in range(repetitions)
    ]


def run_cell(cell: Cell) -> float:
    """Measure the average degree of one seeded deployment."""
    (size,) = cell.key
    topology = random_deployment(
        size,
        seed=derive_seed(cell.param("seed"), EXPERIMENT, size, cell.rep),
        base_station_center=False,
    )
    return topology.average_degree()


def reduce(cells: Sequence[Cell], results: Sequence[object]) -> ExperimentTable:
    """Fold per-cell degrees into the Table I rows."""
    table = ExperimentTable(
        name="Table I: network size vs network density",
        columns=[
            "nodes",
            "analytic_degree",
            "measured_degree",
            "measured_std",
            "paper_degree",
        ],
    )
    for key, entries in grouped(cells, results).items():
        (size,) = key
        mean, std = mean_std([float(degree) for _cell, degree in entries])
        table.add_row(
            size,
            expected_average_degree(size),
            mean,
            std,
            PAPER_TABLE_I.get(size, float("nan")),
        )
    table.add_note(
        "analytic = (N-1) * [pi t^2 - 8/3 t^3 + t^4/2], t = range/side"
    )
    return table


SPEC = CellExperiment(
    EXPERIMENT, cells, run_cell, reduce,
    description="Table I: network size vs. average degree (analytic "
                "and measured)",
)


def run(
    sizes: Sequence[int] = PAPER_SIZES,
    *,
    repetitions: int = 10,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentTable:
    """Regenerate Table I."""
    from ..runner import execute

    return execute(
        SPEC, jobs=jobs, sizes=sizes, repetitions=repetitions, seed=seed
    )
