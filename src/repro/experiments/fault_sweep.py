"""Fault-injection sweep: crashes + burst loss vs protocol robustness.

Two linked studies over the full radio stack:

* :func:`run` — a grid over crash fraction and Gilbert–Elliott burst
  severity, comparing loss-tolerant iPDA (ACK'd slices/reports,
  re-parenting, graceful degradation) against the paper's
  fire-and-forget iPDA and the TAG baseline.  For each cell it reports
  the accept/degrade/reject split, accuracy against the participant
  total, and the retransmission/fail-over effort spent.

* :func:`run_session` — the headline robustness demonstration: a
  50-round service under 5% fail-stop crashes plus burst loss.  Honest
  rounds must never be falsely rejected (every round is accepted or
  explicitly degraded with a coverage statement), while a data-polluting
  aggregator under the *same* fault load is still rejected — loss
  cannot be used to launder pollution, and pollution is never
  misread as loss.

Regenerate the checked-in results with::

    PYTHONPATH=src python -m repro.experiments.fault_sweep
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.config import IpdaConfig, RobustnessConfig
from ..faults.plan import FaultPlan, GilbertElliottParams
from ..net.topology import Topology, grid_deployment
from ..protocols.ipda import IpdaProtocol
from ..protocols.tag import TagProtocol
from ..rng import RngStreams, derive_seed
from .common import (
    Cell,
    CellExperiment,
    ExperimentTable,
    grouped,
    make_cell,
    mean_std,
)

__all__ = ["run", "run_session", "default_topology", "LOSS_LEVELS", "SPEC"]

EXPERIMENT = "fault-sweep"

#: Named burst-loss severities for the sweep.  ``expected_loss`` runs
#: ~0 / ~4% / ~11% long-run average frame loss, but arriving in bursts
#: (mean bad-state sojourn 2 s) rather than i.i.d. drops.
LOSS_LEVELS: Mapping[str, Optional[GilbertElliottParams]] = {
    "none": None,
    "light": GilbertElliottParams(
        bad_rate=0.025, recovery_rate=0.5, loss_good=0.0, loss_bad=0.8
    ),
    "heavy": GilbertElliottParams(
        bad_rate=0.07, recovery_rate=0.5, loss_good=0.01, loss_bad=0.8
    ),
}

#: The crash window: anywhere from Phase I into the convergecast, so
#: crashes hit tree construction, slicing, and reporting alike.
CRASH_WINDOW = (0.0, 25.0)

_VARIANTS = ("ipda-robust", "ipda-legacy", "tag-robust")


def default_topology() -> Topology:
    """The sweep's deployment: a dense 7x7 grid (mean degree ~14).

    Grid spacing 20 m under the paper's 50 m radio range keeps every
    sensor covered by both trees, so outcome changes are attributable
    to the injected faults rather than to sparse-deployment data loss.
    """
    return grid_deployment(7, 7, spacing=20.0)


def _plan(
    topology: Topology,
    crash_fraction: float,
    burst: Optional[GilbertElliottParams],
    *,
    seed: int,
    recover_after: Optional[float] = None,
    protect: Tuple[int, ...] = (0,),
) -> FaultPlan:
    rng = np.random.default_rng(seed)
    return FaultPlan.random_crashes(
        range(1, topology.node_count),
        crash_fraction,
        rng=rng,
        window=CRASH_WINDOW,
        recover_after=recover_after,
        protect=protect,
        burst_loss=burst,
        seed=seed,
    )


def _robust_config() -> IpdaConfig:
    return IpdaConfig(robustness=RobustnessConfig())


def _make_variant(label: str):
    if label == "ipda-robust":
        return IpdaProtocol(_robust_config())
    if label == "ipda-legacy":
        return IpdaProtocol()
    return TagProtocol(robustness=RobustnessConfig())


def cells(
    crash_fractions: Sequence[float] = (0.0, 0.05, 0.15),
    loss_levels: Sequence[str] = ("none", "light", "heavy"),
    *,
    repetitions: int = 5,
    readings_value: int = 10,
    seed: int = 0,
) -> List[Cell]:
    """One cell per ``(crash fraction, loss level, repetition)``."""
    return [
        make_cell(
            EXPERIMENT,
            (float(crash_fraction), str(level)),
            rep,
            readings_value=int(readings_value),
            seed=int(seed),
        )
        for crash_fraction in crash_fractions
        for level in loss_levels
        for rep in range(repetitions)
    ]


def run_cell(cell: Cell) -> Dict[str, Dict[str, object]]:
    """Run all three protocol variants against one fault draw.

    The fault plan and the stream seed are shared across the variants
    (paired comparison: same crashes, same bursts, same channel
    randomness) but derived per grid cell — the old harness seeded
    streams with ``seed + 104729 * rep``, making every grid cell replay
    identical channel randomness.
    """
    crash_fraction, level = cell.key
    seed = cell.param("seed")
    topology = default_topology()
    readings = {
        i: cell.param("readings_value")
        for i in range(1, topology.node_count)
    }
    burst = LOSS_LEVELS[level]
    plan_seed = derive_seed(
        seed, EXPERIMENT, "plan", str(crash_fraction), level, cell.rep
    )
    stream_seed = derive_seed(
        seed, EXPERIMENT, "streams", str(crash_fraction), level, cell.rep
    )
    out: Dict[str, Dict[str, object]] = {}
    for label in _VARIANTS:
        plan = _plan(topology, crash_fraction, burst, seed=plan_seed)
        outcome = _make_variant(label).run_round(
            topology,
            readings,
            streams=RngStreams(stream_seed),
            round_id=cell.rep,
            fault_plan=plan,
        )
        if label == "tag-robust":
            # TAG has no integrity check: every round is "accepted";
            # accuracy is what it collected.
            result_outcome = "accepted"
            accuracy = outcome.reported / max(outcome.participant_total, 1)
        else:
            result_outcome = outcome.outcome
            accuracy = (
                outcome.reported / max(outcome.participant_total, 1)
                if outcome.reported is not None
                else None
            )
        out[label] = {
            "outcome": result_outcome,
            "accuracy": accuracy,
            "retries": outcome.stats.get("retries_used", 0),
            "reparents": outcome.stats.get("reparent_count", 0),
        }
    return out


def reduce(cells: Sequence[Cell], results: Sequence[object]) -> ExperimentTable:
    """Fold repetition cells into per-(grid cell, variant) rate rows."""
    table = ExperimentTable(
        name="Fault sweep: outcome rates under crashes + burst loss",
        columns=[
            "crash_fraction",
            "burst",
            "protocol",
            "accept_rate",
            "degrade_rate",
            "reject_rate",
            "accuracy",
            "retries",
            "reparents",
        ],
    )
    for key, entries in grouped(cells, results).items():
        crash_fraction, level = key
        repetitions = len(entries)
        for label in _VARIANTS:
            outcomes = {"accepted": 0, "degraded": 0, "rejected": 0}
            accuracies = []
            retries = []
            reparents = []
            for _cell, result in entries:
                variant = result[label]
                outcomes[variant["outcome"]] += 1
                if variant["accuracy"] is not None:
                    accuracies.append(variant["accuracy"])
                retries.append(variant["retries"])
                reparents.append(variant["reparents"])
            table.add_row(
                crash_fraction,
                level,
                label,
                outcomes["accepted"] / repetitions,
                outcomes["degraded"] / repetitions,
                outcomes["rejected"] / repetitions,
                mean_std(accuracies)[0] if accuracies else 0.0,
                mean_std(retries)[0],
                mean_std(reparents)[0],
            )
    table.add_note(
        "burst levels: none / light (~4% avg loss) / heavy (~11% avg "
        "loss), Gilbert-Elliott per-link chains, mean burst 2 s"
    )
    table.add_note(
        "accuracy = reported / participant total (degraded rounds use "
        "the partial estimate); tag-robust has no integrity check"
    )
    return table


SPEC = CellExperiment(
    EXPERIMENT, cells, run_cell, reduce,
    description="Fault sweep: crash fractions x burst loss vs "
                "robust-iPDA verdicts",
)


def run(
    crash_fractions: Sequence[float] = (0.0, 0.05, 0.15),
    loss_levels: Sequence[str] = ("none", "light", "heavy"),
    *,
    repetitions: int = 5,
    readings_value: int = 10,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentTable:
    """Sweep crash fraction x burst loss for the three protocol variants."""
    from ..runner import execute

    return execute(
        SPEC,
        jobs=jobs,
        crash_fractions=tuple(crash_fractions),
        loss_levels=tuple(loss_levels),
        repetitions=repetitions,
        readings_value=readings_value,
        seed=seed,
    )


def run_session(
    rounds: int = 50,
    *,
    crash_fraction: float = 0.05,
    loss_level: str = "light",
    pollution_offset: int = 100_000,
    churn_recover_after: Optional[float] = 20.0,
    readings_value: int = 10,
    seed: int = 0,
) -> ExperimentTable:
    """The headline demo: a long faulty session, honest vs polluted.

    Each round draws a fresh fault plan (5% fail-stop crashes by
    default, recovering after ``churn_recover_after`` seconds — churn —
    plus bursty loss).  The honest service must show **zero false
    rejects**: every round accepted or degraded, never rejected and
    never silently wrong.  The polluted service runs the *same* fault
    plans with one compromised aggregator and must keep rejecting.
    """
    topology = default_topology()
    readings = {
        i: readings_value for i in range(1, topology.node_count)
    }
    burst = LOSS_LEVELS[loss_level]
    config = _robust_config()
    table = ExperimentTable(
        name=(
            f"Fault session: {rounds} rounds, "
            f"{crash_fraction:.0%} crashes + {loss_level} burst loss"
        ),
        columns=[
            "service",
            "rounds",
            "accepted",
            "degraded",
            "rejected",
            "false_rejects",
            "silently_wrong",
            "mean_accuracy",
            "min_coverage",
        ],
    )
    polluter = 24  # grid centre: well-connected, always an aggregator
    for service, polluters in (
        ("honest", None),
        ("polluted", {polluter: pollution_offset}),
    ):
        # The polluter never crashes: every polluted round carries an
        # active attack, so its reject count is a clean detection rate.
        protect = (0,) if polluters is None else (0, polluter)
        counts = {"accepted": 0, "degraded": 0, "rejected": 0}
        accuracies = []
        coverages = []
        silently_wrong = 0
        for round_id in range(rounds):
            # Plan and stream seeds are shared between the honest and
            # polluted services: the demo's claim is about the same
            # fault load with and without the attack.
            plan = _plan(
                topology,
                crash_fraction,
                burst,
                seed=derive_seed(seed, "fault-session", round_id, "plan"),
                recover_after=churn_recover_after,
                protect=protect,
            )
            out = IpdaProtocol(config).run_round(
                topology,
                readings,
                streams=RngStreams(
                    derive_seed(seed, "fault-session", round_id, "streams")
                ),
                round_id=round_id,
                polluters=polluters,
                fault_plan=plan,
            )
            counts[out.outcome] += 1
            verification = out.verification
            assert verification is not None
            if verification.coverage is not None:
                coverages.append(verification.coverage)
            if out.reported is not None:
                accuracy = out.reported / max(out.participant_total, 1)
                accuracies.append(accuracy)
                # "Silently wrong": served a value the observed loss
                # cannot explain.  The served tree is the one closest
                # to the expected population; each piece it is off by
                # (missing or duplicated) shifts it at most one slack.
                slack = out.stats["magnitude"] * max(2, config.slices)
                expected = verification.expected_pieces or 0
                gap = min(
                    abs(
                        (verification.pieces_red or expected) - expected
                    ),
                    abs(
                        (verification.pieces_blue or expected) - expected
                    ),
                )
                loss_bound = config.threshold + slack * gap
                if abs(out.reported - out.participant_total) > loss_bound:
                    silently_wrong += 1
        false_rejects = counts["rejected"] if polluters is None else 0
        table.add_row(
            service,
            rounds,
            counts["accepted"],
            counts["degraded"],
            counts["rejected"],
            false_rejects,
            silently_wrong,
            mean_std(accuracies)[0] if accuracies else 0.0,
            min(coverages) if coverages else 1.0,
        )
    table.add_note(
        "honest service must show false_rejects = 0 and silently_wrong "
        "= 0; the polluted service (one compromised aggregator, same "
        "fault plans) must keep rejecting — a polluted round can only "
        "be accepted when the faults censored the polluter's own "
        "report, i.e. the round was genuinely clean (silently_wrong "
        "stays 0)"
    )
    table.add_note(
        "crashed nodes recover after "
        f"{churn_recover_after} s (churn); coverage = worse tree's "
        "piece fraction"
    )
    return table


def main() -> None:  # pragma: no cover - exercised via the CLI smoke test
    """Regenerate ``results/fault_sweep*.{csv,txt}``."""
    import os

    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )))
    results_dir = os.path.join(here, "results")
    os.makedirs(results_dir, exist_ok=True)
    sweep = run()
    session = run_session()
    sweep.write_csv(os.path.join(results_dir, "fault_sweep.csv"))
    session.write_csv(os.path.join(results_dir, "fault_session.csv"))
    text = sweep.to_text() + "\n\n" + session.to_text() + "\n"
    with open(os.path.join(results_dir, "fault_sweep.txt"), "w") as handle:
        handle.write(text)
    print(text)


if __name__ == "__main__":  # pragma: no cover
    main()
