"""Time-to-result comparison (beyond the paper).

Measures the simulated time at which the base station received its
last partial result — the query latency.  iPDA adds the slicing window
between tree construction and the convergecast, so its latency exceeds
TAG's by roughly that constant; density affects both only mildly
(the convergecast is depth-scheduled).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.config import IpdaConfig
from ..protocols.ipda import IpdaProtocol
from ..protocols.tag import TagProtocol
from ..rng import RngStreams, derive_seed
from ..workloads.readings import count_readings
from .common import (
    Cell,
    CellExperiment,
    ExperimentTable,
    cached_deployment,
    grouped,
    make_cell,
    mean_std,
)

__all__ = ["run", "SPEC"]

EXPERIMENT = "latency"


def cells(
    *,
    sizes: Sequence[int] = (200, 400, 600),
    repetitions: int = 3,
    seed: int = 0,
) -> List[Cell]:
    """One cell per ``(size, repetition)``; both protocols share it."""
    return [
        make_cell(EXPERIMENT, (int(size),), rep, seed=int(seed))
        for size in sizes
        for rep in range(repetitions)
    ]


def run_cell(cell: Cell) -> Tuple[float, float]:
    """One TAG round and one iPDA round on a shared deployment."""
    (size,) = cell.key
    seed = cell.param("seed")
    topology = cached_deployment(
        size, seed=derive_seed(seed, EXPERIMENT, size, cell.rep, "deploy")
    )
    readings = count_readings(topology)
    tag = TagProtocol().run_round(
        topology,
        readings,
        streams=RngStreams(
            derive_seed(seed, EXPERIMENT, size, cell.rep, "tag")
        ),
        round_id=cell.rep,
    )
    ipda = IpdaProtocol(IpdaConfig()).run_round(
        topology,
        readings,
        streams=RngStreams(
            derive_seed(seed, EXPERIMENT, size, cell.rep, "ipda")
        ),
        round_id=cell.rep,
    )
    return float(tag.stats["latency"]), float(ipda.stats["latency"])


def reduce(cells: Sequence[Cell], results: Sequence[object]) -> ExperimentTable:
    """One row per size: mean latencies and their gap."""
    table = ExperimentTable(
        name="Latency: time to result at the base station",
        columns=["nodes", "tag_latency_s", "ipda_latency_s", "delta_s"],
    )
    for key, entries in grouped(cells, results).items():
        (size,) = key
        tag_mean = mean_std([result[0] for _cell, result in entries])[0]
        ipda_mean = mean_std([result[1] for _cell, result in entries])[0]
        table.add_row(size, tag_mean, ipda_mean, ipda_mean - tag_mean)
    table.add_note(
        "iPDA pays the slicing window plus assembly guard on top of the "
        "TAG-style convergecast; both are depth-scheduled so density "
        "moves latency only mildly"
    )
    return table


SPEC = CellExperiment(
    EXPERIMENT, cells, run_cell, reduce,
    description="Time-to-result at the base station, TAG vs iPDA",
)


def run(
    *,
    sizes: Sequence[int] = (200, 400, 600),
    repetitions: int = 3,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentTable:
    """Query latency (seconds of simulated time) over network size."""
    from ..runner import execute

    return execute(
        SPEC, jobs=jobs, sizes=tuple(sizes), repetitions=repetitions,
        seed=seed,
    )
