"""Time-to-result comparison (beyond the paper).

Measures the simulated time at which the base station received its
last partial result — the query latency.  iPDA adds the slicing window
between tree construction and the convergecast, so its latency exceeds
TAG's by roughly that constant; density affects both only mildly
(the convergecast is depth-scheduled).
"""

from __future__ import annotations

from typing import Sequence

from ..core.config import IpdaConfig
from ..net.topology import random_deployment
from ..protocols.ipda import IpdaProtocol
from ..protocols.tag import TagProtocol
from ..rng import RngStreams
from ..workloads.readings import count_readings
from .common import ExperimentTable, mean_std

__all__ = ["run"]


def run(
    *,
    sizes: Sequence[int] = (200, 400, 600),
    repetitions: int = 3,
    seed: int = 0,
) -> ExperimentTable:
    """Query latency (seconds of simulated time) over network size."""
    table = ExperimentTable(
        name="Latency: time to result at the base station",
        columns=["nodes", "tag_latency_s", "ipda_latency_s", "delta_s"],
    )
    for size in sizes:
        tag_latency, ipda_latency = [], []
        for rep in range(repetitions):
            topology = random_deployment(size, seed=seed + 7 * rep + size)
            readings = count_readings(topology)
            streams = RngStreams(seed + 100 * rep + size)
            tag = TagProtocol().run_round(
                topology, readings, streams=streams, round_id=rep
            )
            ipda = IpdaProtocol(IpdaConfig()).run_round(
                topology, readings, streams=streams, round_id=rep
            )
            tag_latency.append(float(tag.stats["latency"]))
            ipda_latency.append(float(ipda.stats["latency"]))
        tag_mean = mean_std(tag_latency)[0]
        ipda_mean = mean_std(ipda_latency)[0]
        table.add_row(size, tag_mean, ipda_mean, ipda_mean - tag_mean)
    table.add_note(
        "iPDA pays the slicing window plus assembly guard on top of the "
        "TAG-style convergecast; both are depth-scheduled so density "
        "moves latency only mildly"
    )
    return table
