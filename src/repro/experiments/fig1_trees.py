"""Figure 1 — disjoint tree construction walk-through.

Figure 1 of the paper illustrates the three stages of Phase I on a toy
network.  This experiment builds the trees on a seeded deployment and
reports the structural facts the figure conveys: the two trees are
node-disjoint, rooted at the base station, interleaved (almost every
node sees both colours in range), and together cover nearly the whole
network when dense.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core.config import IpdaConfig
from ..core.trees import build_disjoint_trees
from ..net.graphs import tree_depth
from ..net.topology import random_deployment
from ..rng import derive_seed
from ..sim.messages import TreeColor
from .common import Cell, CellExperiment, ExperimentTable, make_cell

__all__ = ["run", "SPEC"]

EXPERIMENT = "fig1"


def cells(
    *, node_count: int = 60, area: float = 160.0, seed: int = 1
) -> List[Cell]:
    """A single structural cell (Figure 1 is one walk-through)."""
    return [
        make_cell(
            EXPERIMENT,
            ("structure",),
            0,
            node_count=int(node_count),
            area=float(area),
            seed=int(seed),
        )
    ]


def run_cell(cell: Cell) -> List[Tuple[str, object]]:
    """Build the trees and collect the structural property rows."""
    node_count = cell.param("node_count")
    seed = cell.param("seed")
    topology = random_deployment(
        node_count,
        area=cell.param("area"),
        seed=derive_seed(seed, EXPERIMENT, node_count, cell.rep),
    )
    config = IpdaConfig()
    trees = build_disjoint_trees(
        topology,
        config,
        np.random.default_rng(
            derive_seed(seed, EXPERIMENT, node_count, cell.rep, "trees")
        ),
    )
    red = trees.aggregators(TreeColor.RED)
    blue = trees.aggregators(TreeColor.BLUE)
    covered = trees.covered_nodes() - {trees.base_station}
    return [
        ("nodes", topology.node_count),
        ("average degree", topology.average_degree()),
        ("red aggregators", len(red)),
        ("blue aggregators", len(blue)),
        ("node-disjoint", trees.is_node_disjoint()),
        ("red tree consistent", trees.tree_is_consistent(TreeColor.RED)),
        ("blue tree consistent", trees.tree_is_consistent(TreeColor.BLUE)),
        ("red tree depth", tree_depth(trees.parent_map(TreeColor.RED))),
        ("blue tree depth", tree_depth(trees.parent_map(TreeColor.BLUE))),
        ("covered fraction", len(covered) / (topology.node_count - 1)),
        (
            "participants (l=2) fraction",
            len(trees.participants(config.slices))
            / (topology.node_count - 1),
        ),
    ]


def reduce(cells: Sequence[Cell], results: Sequence[object]) -> ExperimentTable:
    """Render the single cell's property list as the Figure 1 table."""
    table = ExperimentTable(
        name="Figure 1: disjoint tree construction",
        columns=["property", "value"],
    )
    for rows in results:
        for name, value in rows:
            table.add_row(name, value)
    table.add_note(
        "matches Figure 1(c): interleaved node-disjoint trees rooted at "
        "the base station"
    )
    return table


SPEC = CellExperiment(
    EXPERIMENT, cells, run_cell, reduce,
    description="Figure 1: disjoint aggregation-tree construction "
                "walk-through",
)


def run(
    *, node_count: int = 60, area: float = 160.0, seed: int = 1, jobs: int = 1
) -> ExperimentTable:
    """Regenerate the Figure 1 walk-through as a structural table."""
    from ..runner import execute

    return execute(
        SPEC, jobs=jobs, node_count=node_count, area=area, seed=seed
    )
