"""Figure 1 — disjoint tree construction walk-through.

Figure 1 of the paper illustrates the three stages of Phase I on a toy
network.  This experiment builds the trees on a seeded deployment and
reports the structural facts the figure conveys: the two trees are
node-disjoint, rooted at the base station, interleaved (almost every
node sees both colours in range), and together cover nearly the whole
network when dense.
"""

from __future__ import annotations

import numpy as np

from ..core.config import IpdaConfig
from ..core.trees import build_disjoint_trees
from ..net.graphs import tree_depth
from ..net.topology import random_deployment
from ..sim.messages import TreeColor
from .common import ExperimentTable

__all__ = ["run"]


def run(*, node_count: int = 60, area: float = 160.0, seed: int = 1) -> ExperimentTable:
    """Regenerate the Figure 1 walk-through as a structural table."""
    topology = random_deployment(node_count, area=area, seed=seed)
    config = IpdaConfig()
    trees = build_disjoint_trees(
        topology, config, np.random.default_rng(seed)
    )
    table = ExperimentTable(
        name="Figure 1: disjoint tree construction",
        columns=["property", "value"],
    )
    red = trees.aggregators(TreeColor.RED)
    blue = trees.aggregators(TreeColor.BLUE)
    table.add_row("nodes", topology.node_count)
    table.add_row("average degree", topology.average_degree())
    table.add_row("red aggregators", len(red))
    table.add_row("blue aggregators", len(blue))
    table.add_row("node-disjoint", trees.is_node_disjoint())
    table.add_row(
        "red tree consistent", trees.tree_is_consistent(TreeColor.RED)
    )
    table.add_row(
        "blue tree consistent", trees.tree_is_consistent(TreeColor.BLUE)
    )
    table.add_row(
        "red tree depth", tree_depth(trees.parent_map(TreeColor.RED))
    )
    table.add_row(
        "blue tree depth", tree_depth(trees.parent_map(TreeColor.BLUE))
    )
    covered = trees.covered_nodes() - {trees.base_station}
    table.add_row(
        "covered fraction", len(covered) / (topology.node_count - 1)
    )
    table.add_row(
        "participants (l=2) fraction",
        len(trees.participants(config.slices)) / (topology.node_count - 1),
    )
    table.add_note(
        "matches Figure 1(c): interleaved node-disjoint trees rooted at "
        "the base station"
    )
    return table
