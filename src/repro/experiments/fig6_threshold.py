"""Figure 6 — red-vs-blue agreement and the choice of Th.

Runs the full radio iPDA COUNT aggregation over the paper's size sweep
for ``l = 1`` and ``l = 2``, recording the aggregated value each tree
delivered and the "perfect" (lossless) value.  The differences
``|S_red - S_blue|`` stay within single digits, justifying the paper's
``Th = 5``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.config import IpdaConfig
from ..protocols.ipda import IpdaProtocol
from ..rng import RngStreams, derive_seed
from ..workloads.readings import count_readings
from .common import (
    PAPER_SIZES,
    Cell,
    CellExperiment,
    ExperimentTable,
    cached_deployment,
    grouped,
    make_cell,
    mean_std,
)

__all__ = ["run", "SPEC"]

EXPERIMENT = "fig6"


def cells(
    sizes: Sequence[int] = PAPER_SIZES,
    *,
    slice_counts: Sequence[int] = (1, 2),
    repetitions: int = 5,
    seed: int = 0,
) -> List[Cell]:
    """One cell per ``(size, repetition)``; slice counts share the cell."""
    return [
        make_cell(
            EXPERIMENT,
            (int(size),),
            rep,
            slice_counts=tuple(int(s) for s in slice_counts),
            seed=int(seed),
        )
        for size in sizes
        for rep in range(repetitions)
    ]


def run_cell(cell: Cell) -> Dict[int, Tuple[int, int, int]]:
    """Run one round per slice count on a shared deployment.

    Each slice count gets its own derived stream seed — the old harness
    reused one seed across slice counts, correlating their rounds.
    """
    (size,) = cell.key
    seed = cell.param("seed")
    topology = cached_deployment(
        size, seed=derive_seed(seed, EXPERIMENT, size, cell.rep, "deploy")
    )
    readings = count_readings(topology)
    out: Dict[int, Tuple[int, int, int]] = {}
    for slices in cell.param("slice_counts"):
        outcome = IpdaProtocol(IpdaConfig(slices=slices)).run_round(
            topology,
            readings,
            streams=RngStreams(
                derive_seed(seed, EXPERIMENT, size, cell.rep, slices)
            ),
            round_id=cell.rep,
        )
        out[slices] = (
            outcome.s_red,
            outcome.s_blue,
            abs(outcome.s_red - outcome.s_blue),
        )
    return out


def reduce(cells: Sequence[Cell], results: Sequence[object]) -> ExperimentTable:
    """One row per size; note carries the overall max disagreement."""
    slice_counts = cells[0].param("slice_counts") if cells else ()
    columns = ["nodes", "perfect"]
    for slices in slice_counts:
        columns.extend(
            [f"red_l{slices}", f"blue_l{slices}", f"maxdiff_l{slices}"]
        )
    table = ExperimentTable(
        name="Figure 6: red vs blue tree aggregates (COUNT)",
        columns=columns,
    )

    overall_max_diff = 0
    for key, entries in grouped(cells, results).items():
        (size,) = key
        row: list = [size, size - 1]
        for slices in slice_counts:
            reds = [result[slices][0] for _cell, result in entries]
            blues = [result[slices][1] for _cell, result in entries]
            diffs = [result[slices][2] for _cell, result in entries]
            max_diff = max(diffs)
            overall_max_diff = max(overall_max_diff, max_diff)
            row.extend(
                [
                    mean_std([float(v) for v in reds])[0],
                    mean_std([float(v) for v in blues])[0],
                    max_diff,
                ]
            )
        table.add_row(*row)

    table.add_note(
        f"largest |S_red - S_blue| observed: {overall_max_diff} "
        f"-> Th = {max(overall_max_diff, 5)} tolerates benign losses "
        "(paper recommends Th = 5)"
    )
    return table


SPEC = CellExperiment(
    EXPERIMENT, cells, run_cell, reduce,
    description="Figure 6: red-vs-blue COUNT agreement and the "
                "integrity threshold",
)


def run(
    sizes: Sequence[int] = PAPER_SIZES,
    *,
    slice_counts: Sequence[int] = (1, 2),
    repetitions: int = 5,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentTable:
    """Regenerate Figure 6 (plus the implied Th recommendation)."""
    from ..runner import execute

    return execute(
        SPEC,
        jobs=jobs,
        sizes=sizes,
        slice_counts=tuple(slice_counts),
        repetitions=repetitions,
        seed=seed,
    )
