"""Figure 6 — red-vs-blue agreement and the choice of Th.

Runs the full radio iPDA COUNT aggregation over the paper's size sweep
for ``l = 1`` and ``l = 2``, recording the aggregated value each tree
delivered and the "perfect" (lossless) value.  The differences
``|S_red - S_blue|`` stay within single digits, justifying the paper's
``Th = 5``.
"""

from __future__ import annotations

from typing import Sequence

from ..core.config import IpdaConfig
from ..net.topology import random_deployment
from ..protocols.ipda import IpdaProtocol
from ..rng import RngStreams
from ..workloads.readings import count_readings
from .common import PAPER_SIZES, ExperimentTable, mean_std

__all__ = ["run"]


def run(
    sizes: Sequence[int] = PAPER_SIZES,
    *,
    slice_counts: Sequence[int] = (1, 2),
    repetitions: int = 5,
    seed: int = 0,
) -> ExperimentTable:
    """Regenerate Figure 6 (plus the implied Th recommendation)."""
    columns = ["nodes", "perfect"]
    for slices in slice_counts:
        columns.extend(
            [f"red_l{slices}", f"blue_l{slices}", f"maxdiff_l{slices}"]
        )
    table = ExperimentTable(
        name="Figure 6: red vs blue tree aggregates (COUNT)",
        columns=columns,
    )

    overall_max_diff = 0
    for size in sizes:
        row: list = [size, size - 1]
        for slices in slice_counts:
            reds, blues, diffs = [], [], []
            for rep in range(repetitions):
                topology = random_deployment(size, seed=seed + 31 * rep + size)
                readings = count_readings(topology)
                outcome = IpdaProtocol(IpdaConfig(slices=slices)).run_round(
                    topology,
                    readings,
                    streams=RngStreams(seed + 1000 * rep + size),
                    round_id=rep,
                )
                reds.append(outcome.s_red)
                blues.append(outcome.s_blue)
                diffs.append(abs(outcome.s_red - outcome.s_blue))
            red_mean, _ = mean_std([float(v) for v in reds])
            blue_mean, _ = mean_std([float(v) for v in blues])
            max_diff = max(diffs)
            overall_max_diff = max(overall_max_diff, max_diff)
            row.extend([red_mean, blue_mean, max_diff])
        table.add_row(*row)

    table.add_note(
        f"largest |S_red - S_blue| observed: {overall_max_diff} "
        f"-> Th = {max(overall_max_diff, 5)} tolerates benign losses "
        "(paper recommends Th = 5)"
    )
    return table
