"""Run-wide observability: metrics registry, phase timers, run reports.

The paper's whole evaluation is measurement — bytes on the air,
per-node message counts, accuracy, latency — and the surrounding
machinery (engine, radio, MAC, runner, store) each keep their own
counters.  This package is the zero-dependency layer that collects all
of them into one deterministic, schema-versioned run report
(:data:`~repro.obs.report.RUN_SCHEMA`) without perturbing the
simulation: instrumentation reads counters the subsystems already
maintain, golden outputs stay byte-identical, and when no registry is
active the hooks cost a single ``None`` check.

Usage::

    from repro.obs import MetricsRegistry, using_registry

    registry = MetricsRegistry()
    with using_registry(registry):
        table = execute("fig7", jobs=4)
    print(registry.snapshot()["counters"]["trace.frames_sent"])
"""

from .follow import EventTailer, follow_events, render_event_summary
from .registry import (
    DEFAULT_BATCH_EDGES,
    DEFAULT_CELL_SECONDS_EDGES,
    DEFAULT_EVENT_EDGES,
    DEFAULT_LATENCY_EDGES,
    Histogram,
    MetricsRegistry,
    get_registry,
    using_registry,
)
from .report import (
    RUN_SCHEMA,
    build_run_report,
    deterministic_view,
    load_run_report,
    peek_schema,
    render_run_report,
    validate_run_report,
    write_events_jsonl,
    write_run_report,
)

__all__ = [
    "DEFAULT_BATCH_EDGES",
    "DEFAULT_CELL_SECONDS_EDGES",
    "DEFAULT_EVENT_EDGES",
    "DEFAULT_LATENCY_EDGES",
    "EventTailer",
    "Histogram",
    "MetricsRegistry",
    "RUN_SCHEMA",
    "build_run_report",
    "deterministic_view",
    "follow_events",
    "get_registry",
    "load_run_report",
    "peek_schema",
    "render_event_summary",
    "render_run_report",
    "using_registry",
    "validate_run_report",
    "write_events_jsonl",
    "write_run_report",
]
