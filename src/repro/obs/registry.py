"""Metrics registry: counters, gauges, fixed-bucket histograms, phases.

Determinism is the design constraint.  Parallel sweeps must produce the
same snapshot for any ``--jobs`` value, so every aggregate here is
order-insensitive (counters add, gauges keep the max, histogram buckets
add) and histogram bucket edges are fixed at the first observation —
never derived from the data.  Snapshots are plain sorted dicts of JSON
scalars, safe to pickle across process pools and to merge in
cell-enumeration order.

Wall-clock quantities (phases, gauges) are inherently nondeterministic;
:func:`repro.obs.report.deterministic_view` strips them when comparing
snapshots across runs.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = [
    "DEFAULT_BATCH_EDGES",
    "DEFAULT_CELL_SECONDS_EDGES",
    "DEFAULT_EVENT_EDGES",
    "DEFAULT_LATENCY_EDGES",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "using_registry",
]

#: Bucket edges for per-run engine event counts (events per
#: ``Network.run`` harvest): spans toy tests to million-event sweeps.
DEFAULT_EVENT_EDGES: Tuple[float, ...] = (
    10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0
)

#: Bucket edges for per-cell wall seconds in the runner.
DEFAULT_CELL_SECONDS_EDGES: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0
)

#: Bucket edges for per-query service latencies (queue wait and total
#: turnaround, in service seconds) recorded by :mod:`repro.serve`.
DEFAULT_LATENCY_EDGES: Tuple[float, ...] = (
    0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0
)

#: Bucket edges for queries coalesced into one service cycle.
DEFAULT_BATCH_EDGES: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0
)


class Histogram:
    """A fixed-bucket histogram: ``len(edges) + 1`` counts.

    A value lands in bucket ``i`` when ``value <= edges[i]`` (first
    matching edge); values above the last edge land in the overflow
    bucket.  Edges are frozen at construction so two histograms of the
    same metric always merge bucket-by-bucket.
    """

    __slots__ = ("edges", "counts", "total", "count")

    def __init__(self, edges: Sequence[float]):
        edges = tuple(float(edge) for edge in edges)
        if not edges:
            raise ConfigurationError("histogram needs at least one edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ConfigurationError(
                f"histogram edges must be strictly increasing, got {edges}"
            )
        self.edges = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation.

        Non-finite values are rejected before any state changes:
        ``bisect_left`` placement is undefined for NaN and a single
        NaN/inf observation would silently poison ``total`` (and every
        downstream merge and run report built from it).
        """
        value = float(value)
        if not math.isfinite(value):
            raise ConfigurationError(
                f"histogram observation must be finite, got {value!r}"
            )
        self.counts[bisect_left(self.edges, value)] += 1
        self.total += value
        self.count += 1

    def merge(self, other: "Histogram") -> None:
        """Add ``other``'s buckets into this histogram (same edges)."""
        if other.edges != self.edges:
            raise ConfigurationError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {other.edges}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.count += other.count

    def as_dict(self) -> Dict[str, object]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Histogram":
        histogram = cls(data["edges"])  # type: ignore[arg-type]
        counts = list(data.get("counts", []))
        if len(counts) != len(histogram.counts):
            raise ConfigurationError(
                f"histogram counts/edges mismatch: {len(counts)} counts "
                f"for {len(histogram.edges)} edges"
            )
        histogram.counts = [int(c) for c in counts]
        histogram.total = float(data.get("total", 0.0))
        histogram.count = int(data.get("count", 0))
        return histogram


class MetricsRegistry:
    """Accumulates counters, gauges, histograms, and phase timings.

    One registry per scope: the runner gives every cell a fresh one and
    merges the snapshots back in enumeration order, the CLI gives every
    experiment one, and the bench harness embeds one per report.  All
    methods are cheap dict operations — no I/O, no locks (registries
    are never shared across threads).

    ``capture_events=True`` additionally records phase start/end events
    in :attr:`events` for the optional JSONL stream.
    """

    def __init__(self, *, capture_events: bool = False):
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: phase name -> [seconds, entry count]
        self.phases: Dict[str, List[float]] = {}
        self.capture_events = capture_events
        self.events: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name``; merges keep the maximum observed value."""
        self.gauges[name] = float(value)

    def observe(
        self, name: str, value: float, *, edges: Sequence[float]
    ) -> None:
        """Record ``value`` into histogram ``name`` (created on first use)."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(edges)
        histogram.observe(value)

    @contextmanager
    def phase_timer(self, name: str):
        """Accumulate wall time spent inside the ``with`` block."""
        started = time.perf_counter()
        if self.capture_events:
            self.events.append(
                {"event": "phase-start", "phase": name, "at": started}
            )
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            bucket = self.phases.get(name)
            if bucket is None:
                self.phases[name] = [elapsed, 1]
            else:
                bucket[0] += elapsed
                bucket[1] += 1
            if self.capture_events:
                self.events.append(
                    {
                        "event": "phase-end",
                        "phase": name,
                        "at": started + elapsed,
                        "seconds": elapsed,
                    }
                )

    # ------------------------------------------------------------------
    # Snapshots and merging
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Plain-dict copy with sorted keys (picklable, JSON-safe)."""
        return {
            "counters": {
                name: self.counters[name] for name in sorted(self.counters)
            },
            "gauges": {
                name: self.gauges[name] for name in sorted(self.gauges)
            },
            "histograms": {
                name: self.histograms[name].as_dict()
                for name in sorted(self.histograms)
            },
            "phases": {
                name: {
                    "seconds": self.phases[name][0],
                    "count": int(self.phases[name][1]),
                }
                for name in sorted(self.phases)
            },
        }

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold one :meth:`snapshot` dict into this registry.

        Counters and phase times add, gauges keep the max, histograms
        add bucket-by-bucket.  All operations are commutative and
        associative, so any merge order yields the same totals — the
        runner still merges in cell-enumeration order so intermediate
        states are reproducible too.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            current = self.gauges.get(name)
            if current is None or value > current:
                self.gauges[name] = float(value)
        for name, data in snapshot.get("histograms", {}).items():
            incoming = Histogram.from_dict(data)
            existing = self.histograms.get(name)
            if existing is None:
                self.histograms[name] = incoming
            else:
                existing.merge(incoming)
        for name, data in snapshot.get("phases", {}).items():
            bucket = self.phases.get(name)
            if bucket is None:
                self.phases[name] = [
                    float(data["seconds"]), int(data["count"])
                ]
            else:
                bucket[0] += float(data["seconds"])
                bucket[1] += int(data["count"])


# ----------------------------------------------------------------------
# Active-registry stack
# ----------------------------------------------------------------------
#: Innermost active registry last; empty means observability is off and
#: every instrumentation hook reduces to one ``None`` check.
_ACTIVE: List[MetricsRegistry] = []


def get_registry() -> Optional[MetricsRegistry]:
    """The innermost active registry, or ``None`` when none is active."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def using_registry(registry: MetricsRegistry):
    """Make ``registry`` the active sink for the ``with`` block."""
    _ACTIVE.append(registry)
    try:
        yield registry
    finally:
        _ACTIVE.pop()
