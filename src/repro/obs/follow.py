"""Live-tail a ``--metrics-events`` JSONL stream (``report --follow``).

A long sweep (or ``repro serve``) appends phase events to its
``--metrics-events`` file as it runs; ``repro report --follow PATH``
watches that file and re-renders an aggregate counter/phase table each
time new events land, so progress is visible without waiting for the
final run report.

The tailer is deliberately defensive about the producer: the file may
not exist yet (the run hasn't reached its first flush), a line may be
torn mid-write (ignored until completed), and the file may be replaced
or truncated between runs (state resets and tailing restarts from the
top).
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["EventTailer", "follow_events", "render_event_summary"]


class EventTailer:
    """Incremental JSONL event parser and aggregator.

    Feed raw text chunks in file order; the tailer buffers the trailing
    partial line, counts events, sums ``phase-end`` durations per
    ``(experiment, phase)``, and keeps the latest ``counters`` snapshot
    per experiment (the run loop emits one per finished experiment).
    """

    def __init__(self) -> None:
        self._buffer = ""
        self.events = 0
        self.skipped = 0
        #: (experiment, phase) -> [count, total seconds]
        self.phases: Dict[Tuple[str, str], List[float]] = {}
        #: experiment -> latest counter snapshot
        self.counters: Dict[str, Dict[str, float]] = {}

    def feed(self, chunk: str) -> int:
        """Consume a chunk; returns how many complete events it held."""
        self._buffer += chunk
        consumed = 0
        while True:
            line, separator, rest = self._buffer.partition("\n")
            if not separator:
                break
            self._buffer = rest
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                self.skipped += 1
                continue
            if not isinstance(event, dict):
                self.skipped += 1
                continue
            self._apply(event)
            consumed += 1
        return consumed

    def _apply(self, event: Dict[str, object]) -> None:
        self.events += 1
        experiment = str(event.get("experiment", "-"))
        kind = event.get("event")
        if kind == "phase-end":
            key = (experiment, str(event.get("phase", "?")))
            entry = self.phases.setdefault(key, [0, 0.0])
            entry[0] += 1
            try:
                entry[1] += float(event.get("seconds", 0.0))
            except (TypeError, ValueError):
                pass
        elif kind == "counters":
            counters = event.get("counters")
            if isinstance(counters, dict):
                self.counters[experiment] = {
                    str(name): value for name, value in counters.items()
                }

    def reset(self) -> None:
        """Forget everything (the producer truncated/replaced the file)."""
        self.__init__()

    def render(self) -> str:
        return render_event_summary(self)


def render_event_summary(tailer: EventTailer) -> str:
    """The re-rendered table: phases first, then counters."""
    lines = [f"events: {tailer.events}"]
    if tailer.skipped:
        lines[0] += f" ({tailer.skipped} unparsable line(s) skipped)"
    if tailer.phases:
        width = max(
            len(f"{experiment}:{phase}")
            for experiment, phase in tailer.phases
        )
        lines.append("phases:")
        for (experiment, phase), (count, seconds) in sorted(
            tailer.phases.items()
        ):
            label = f"{experiment}:{phase}"
            lines.append(
                f"  {label.ljust(width)}  x{int(count):<4d} "
                f"{seconds:10.3f}s"
            )
    if tailer.counters:
        rows = [
            (experiment, name, value)
            for experiment, counters in sorted(tailer.counters.items())
            for name, value in sorted(counters.items())
        ]
        width = max(len(f"{exp}:{name}") for exp, name, _value in rows)
        lines.append("counters:")
        for experiment, name, value in rows:
            label = f"{experiment}:{name}"
            lines.append(f"  {label.ljust(width)}  {value}")
    return "\n".join(lines)


def follow_events(
    path: str,
    *,
    interval: float = 0.5,
    max_updates: Optional[int] = None,
    out: Callable[[str], None] = print,
    sleep: Callable[[float], None] = time.sleep,
) -> EventTailer:
    """Tail ``path``, re-rendering whenever new events are flushed.

    Waits for the file to appear, survives truncation (resets and
    re-reads), and emits one rendered summary per batch of new events.
    ``max_updates`` bounds the number of renders (``None`` = follow
    until interrupted); the tailer is returned for inspection.
    """
    tailer = EventTailer()
    position = 0
    updates = 0
    announced = False
    while max_updates is None or updates < max_updates:
        try:
            size = os.path.getsize(path)
        except OSError:
            if not announced:
                out(f"(waiting for {path} ...)")
                announced = True
            sleep(interval)
            continue
        if size < position:
            # Truncated or replaced: start over.
            tailer.reset()
            position = 0
        if size > position:
            with open(path, "r", encoding="utf-8") as handle:
                handle.seek(position)
                chunk = handle.read()
                position = handle.tell()
            if tailer.feed(chunk):
                out(tailer.render())
                updates += 1
                continue
        sleep(interval)
    return tailer
