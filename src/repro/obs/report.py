"""Structured run reports: schema ``repro-run/1`` JSON + JSONL events.

A run report is the machine-readable record of one CLI invocation:
which experiments ran, how long each phase took, and what every
subsystem (engine, radio, MAC, trace, store, deployment cache, runner)
counted while doing it.  The schema is versioned so downstream
consumers (CI artifact checks, cross-protocol overhead comparisons)
can validate before trusting a file, and ``repro report <path>``
pretty-prints one for humans.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .registry import MetricsRegistry

__all__ = [
    "RUN_SCHEMA",
    "VOLATILE_PREFIXES",
    "build_run_report",
    "deterministic_view",
    "load_run_report",
    "peek_schema",
    "render_run_report",
    "validate_run_report",
    "write_events_jsonl",
    "write_run_report",
]

#: Report schema identifier; bump when the JSON layout changes.
RUN_SCHEMA = "repro-run/1"

#: Metric-name prefixes whose values legitimately vary run to run or
#: with ``--jobs`` (wall clocks, cache locality); stripped by
#: :func:`deterministic_view` when comparing snapshots.
VOLATILE_PREFIXES: Tuple[str, ...] = (
    "runner.", "deploy_cache.", "store.", "fleet.",
)

_SNAPSHOT_SECTIONS = ("counters", "gauges", "histograms", "phases")


def build_run_report(
    experiments: Sequence[Dict[str, object]],
    *,
    argv: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Assemble a ``repro-run/1`` document from per-experiment entries.

    Each entry must carry ``name`` and ``metrics`` (a registry
    snapshot); anything else (``elapsed_seconds``, ``cells``, ``jobs``,
    ``shard_cells``) rides along verbatim.  ``totals`` merges every
    experiment's metrics into one snapshot.
    """
    totals = MetricsRegistry()
    elapsed = 0.0
    cells = 0
    for entry in experiments:
        metrics = entry.get("metrics")
        if isinstance(metrics, dict):
            totals.merge(metrics)
        elapsed += float(entry.get("elapsed_seconds", 0.0) or 0.0)
        cells += int(entry.get("cells", 0) or 0)
    return {
        "schema": RUN_SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "argv": list(argv) if argv is not None else None,
        "experiments": [dict(entry) for entry in experiments],
        "totals": {
            "experiments": len(experiments),
            "cells": cells,
            "elapsed_seconds": round(elapsed, 6),
            "metrics": totals.snapshot(),
        },
    }


def _check_snapshot(
    snapshot: object, where: str, problems: List[str]
) -> None:
    if not isinstance(snapshot, dict):
        problems.append(f"{where}: metrics must be an object")
        return
    for section in _SNAPSHOT_SECTIONS:
        block = snapshot.get(section, {})
        if not isinstance(block, dict):
            problems.append(f"{where}: metrics.{section} must be an object")
            continue
        for name, value in block.items():
            if section in ("counters", "gauges"):
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    problems.append(
                        f"{where}: metrics.{section}[{name!r}] must be "
                        f"a number, got {type(value).__name__}"
                    )
            elif section == "histograms":
                if (
                    not isinstance(value, dict)
                    or not isinstance(value.get("edges"), list)
                    or not isinstance(value.get("counts"), list)
                    or len(value["counts"]) != len(value["edges"]) + 1
                ):
                    problems.append(
                        f"{where}: metrics.histograms[{name!r}] must have "
                        f"edges plus len(edges)+1 counts"
                    )
            else:  # phases
                if not isinstance(value, dict) or not isinstance(
                    value.get("seconds"), (int, float)
                ):
                    problems.append(
                        f"{where}: metrics.phases[{name!r}] must carry "
                        f"numeric seconds"
                    )


def validate_run_report(
    report: object, *, path: str = "<report>"
) -> Dict[str, object]:
    """Schema-check one run report; raises naming ``path`` on failure."""
    if not isinstance(report, dict) or report.get("schema") != RUN_SCHEMA:
        schema = report.get("schema") if isinstance(report, dict) else None
        raise ConfigurationError(
            f"{path!r} is not a {RUN_SCHEMA} report (schema={schema!r})"
        )
    problems: List[str] = []
    experiments = report.get("experiments")
    if not isinstance(experiments, list):
        problems.append("experiments must be a list")
        experiments = []
    for index, entry in enumerate(experiments):
        where = f"experiments[{index}]"
        if not isinstance(entry, dict) or not isinstance(
            entry.get("name"), str
        ):
            problems.append(f"{where}: must be an object with a name")
            continue
        _check_snapshot(entry.get("metrics"), where, problems)
    totals = report.get("totals")
    if not isinstance(totals, dict):
        problems.append("totals must be an object")
    else:
        _check_snapshot(totals.get("metrics"), "totals", problems)
    if problems:
        raise ConfigurationError(
            f"{path!r} is not a valid {RUN_SCHEMA} report: "
            + "; ".join(problems[:5])
        )
    return report


def peek_schema(path: str) -> Optional[str]:
    """Read just the ``schema`` field of a report file.

    Lets ``repro report`` dispatch between the report families
    (``repro-run/1`` runs, ``repro-serve/1`` service benches) before
    committing to a schema-specific loader.  Errors always name
    ``path``.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read report {path!r}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"{path!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(document, dict):
        return None
    schema = document.get("schema")
    return schema if isinstance(schema, str) else None


def load_run_report(path: str) -> Dict[str, object]:
    """Read and validate one run report; errors always name ``path``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read run report {path!r}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"{path!r} is not valid JSON: {exc}"
        ) from exc
    return validate_run_report(report, path=path)


def write_run_report(report: Dict[str, object], path: str) -> str:
    """Write ``report`` as JSON; returns the path written."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1, sort_keys=False)
        handle.write("\n")
    return path


def write_events_jsonl(
    events: Iterable[Dict[str, object]], path: str
) -> str:
    """Write the phase event stream, one JSON object per line."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    return path


def deterministic_view(
    snapshot: Dict[str, object],
    *,
    volatile_prefixes: Tuple[str, ...] = VOLATILE_PREFIXES,
) -> Dict[str, object]:
    """The part of a snapshot that must match for any ``--jobs`` value.

    Gauges and phases are wall-clock by nature and the volatile
    prefixes (runner throughput, cache locality) depend on worker
    scheduling, so the view keeps only the simulation-derived counters
    and histograms.
    """

    def keep(name: str) -> bool:
        return not name.startswith(volatile_prefixes)

    return {
        "counters": {
            name: value
            for name, value in snapshot.get("counters", {}).items()
            if keep(name)
        },
        "histograms": {
            name: value
            for name, value in snapshot.get("histograms", {}).items()
            if keep(name)
        },
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _group_counters(counters: Dict[str, object]) -> Dict[str, List[str]]:
    """Counters grouped by their dotted prefix, formatted ``k=v``."""
    groups: Dict[str, List[str]] = {}
    for name in sorted(counters):
        prefix, _, rest = name.partition(".")
        value = counters[name]
        if isinstance(value, float) and value == int(value):
            value = int(value)
        groups.setdefault(prefix, []).append(f"{rest or prefix}={value}")
    return groups


def _render_snapshot(
    snapshot: Dict[str, object], lines: List[str], indent: str
) -> None:
    phases = snapshot.get("phases", {})
    if phases:
        parts = [
            f"{name} {data['seconds']:.3f}s×{data['count']}"
            for name, data in sorted(phases.items())
        ]
        lines.append(f"{indent}phases:  " + "  ".join(parts))
    for prefix, parts in _group_counters(
        snapshot.get("counters", {})
    ).items():
        lines.append(f"{indent}{prefix}: " + " ".join(parts))
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        edges = data.get("edges", [])
        counts = data.get("counts", [])
        buckets = []
        for edge, count in zip(edges, counts):
            if count:
                buckets.append(f"<={edge:g}:{count}")
        if len(counts) == len(edges) + 1 and counts[-1]:
            buckets.append(f">{edges[-1]:g}:{counts[-1]}")
        lines.append(
            f"{indent}{name}: n={data.get('count', 0)} "
            f"total={data.get('total', 0):g}"
            + ("  " + " ".join(buckets) if buckets else "")
        )


def render_run_report(report: Dict[str, object]) -> str:
    """Human-readable rendering for ``repro report <path>``."""
    experiments = report.get("experiments", [])
    totals = report.get("totals", {})
    lines = [
        f"run report ({report.get('schema')}, created "
        f"{report.get('created_utc')}; {len(experiments)} experiment(s), "
        f"{float(totals.get('elapsed_seconds', 0.0)):.1f}s)"
    ]
    for entry in experiments:
        shape = ""
        if "cells" in entry:
            shape = (
                f": {entry['cells']} cells on {entry.get('jobs', '?')} "
                f"worker(s) in {float(entry.get('elapsed_seconds', 0)):.2f}s"
            )
            shards = entry.get("shard_cells")
            if shards:
                shape += f", shards {'/'.join(str(s) for s in shards)}"
        lines.append(f"  {entry.get('name')}{shape}")
        metrics = entry.get("metrics")
        if isinstance(metrics, dict):
            _render_snapshot(metrics, lines, "    ")
    if len(experiments) > 1 and isinstance(totals.get("metrics"), dict):
        lines.append(f"  totals ({totals.get('cells', 0)} cells)")
        _render_snapshot(totals["metrics"], lines, "    ")
    return "\n".join(lines)
