"""PDA / SMART-style slicing-only aggregation (the paper's ref [11]).

The predecessor scheme iPDA tailors its slicing from: readings are cut
into ``l`` encrypted pieces scattered to neighbours, then a *single*
spanning tree aggregates the assembled values.  Privacy matches iPDA's
slicing, but there is no redundancy — a polluter on the lone tree is
undetectable.  Implemented here as an ablation baseline so the
benchmarks can separate the cost of privacy (slicing) from the cost of
integrity (the second tree).

The implementation reuses the TAG tree-construction/convergecast cycle
with a slicing phase in between.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional, Set

from ..core.slicing import SliceAssembler, slice_value
from ..crypto.envelope import make_nonce, open_sealed, seal
from ..crypto.keys import KeyManagementScheme, PairwiseKeyScheme
from ..errors import ProtocolError
from ..net.topology import Topology
from ..sim.mac import MacConfig
from ..sim.messages import (
    BROADCAST,
    AggregateMessage,
    HelloMessage,
    Message,
    SliceMessage,
    TreeColor,
)
from ..sim.network import Network
from ..sim.node import Node
from ..sim.radio import RadioConfig
from ..sim.rng import RngStreams
from .base import AggregationProtocol, RoundOutcome, validate_readings

__all__ = ["PdaParams", "PdaProtocol"]


@dataclass
class PdaParams:
    """Timing and slicing knobs for PDA rounds."""

    slices: int = 2
    hello_window: float = 10.0
    slicing_window: float = 10.0
    assembly_guard: float = 1.0
    slot: float = 2.0
    max_depth: int = 32
    forward_jitter: float = 0.2
    magnitude: Optional[int] = None

    def __post_init__(self) -> None:
        if self.slices < 1:
            raise ProtocolError("slices must be >= 1")
        if min(self.hello_window, self.slicing_window, self.slot) <= 0:
            raise ProtocolError("windows and slot must be positive")


class _PdaNode(Node):
    """A sensor running slicing-only PDA."""

    def __init__(self, node_id: int, network: Network):
        super().__init__(node_id, network)
        self.params = PdaParams()
        self.keys: Optional[KeyManagementScheme] = None
        self.round_id = 0
        self.reading = 0
        self.contributes = False
        self.parent: Optional[int] = None
        self.hops: Optional[int] = None
        self.assembler = SliceAssembler(node_id)
        self.child_sum = 0
        self.participant = False
        self._slice_seq = 0

    def on_receive(self, message: Message) -> None:
        if isinstance(message, HelloMessage):
            self._handle_hello(message)
        elif isinstance(message, SliceMessage):
            assert self.keys is not None
            key = self.keys.link_key(message.src, self.id)
            nonce = make_nonce(message.src, self.id, message.round_id, message.seq)
            self.assembler.receive(
                message.src, open_sealed(message.ciphertext, key, nonce)
            )
        elif isinstance(message, AggregateMessage):
            self.child_sum += message.value

    def _handle_hello(self, message: HelloMessage) -> None:
        if self.parent is not None:
            return
        self.parent = message.src
        self.hops = message.hops + 1
        jitter = float(self.rng.uniform(0.0, self.params.forward_jitter))
        self.schedule(
            jitter,
            lambda: self.send(
                HelloMessage(
                    src=self.id, dst=BROADCAST, hops=self.hops or 0,
                    round_id=self.round_id,
                )
            ),
        )
        self._schedule_report()

    # -- slicing ---------------------------------------------------------
    def begin_slicing(self) -> None:
        if not self.contributes or self.parent is None:
            return
        assert self.keys is not None
        candidates = sorted(
            nbr
            for nbr in self.neighbors()
            if self.keys.can_communicate(self.id, nbr)
        )
        remote_needed = self.params.slices - 1
        if len(candidates) < remote_needed:
            return
        self.participant = True
        magnitude = self.params.magnitude or max(4, 2 * abs(self.reading))
        pieces = slice_value(
            self.reading, self.params.slices, self.rng, magnitude=magnitude
        )
        self.assembler.keep(pieces[0])
        if remote_needed == 0:
            return
        picked = self.rng.choice(len(candidates), size=remote_needed, replace=False)
        targets = [candidates[int(i)] for i in sorted(picked)]
        window = 0.9 * self.params.slicing_window
        for target, piece in zip(targets, pieces[1:]):
            delay = float(self.rng.uniform(0.0, window))
            self.schedule(delay, self._slice_sender(target, piece))

    def _slice_sender(self, target: int, piece: int):
        def fire() -> None:
            assert self.keys is not None
            self._slice_seq += 1
            seq = self._slice_seq
            nonce = make_nonce(self.id, target, self.round_id, seq)
            key = self.keys.link_key(self.id, target)
            self.send(
                SliceMessage(
                    src=self.id,
                    dst=target,
                    round_id=self.round_id,
                    color=TreeColor.RED,  # single logical tree
                    seq=seq,
                    ciphertext=seal(piece, key, nonce),
                )
            )

        return fire

    # -- convergecast ------------------------------------------------------
    def _schedule_report(self) -> None:
        assert self.hops is not None
        start = (
            self.params.hello_window
            + self.params.slicing_window
            + self.params.assembly_guard
            + max(self.params.max_depth - self.hops, 0) * self.params.slot
            + float(self.rng.uniform(0.0, 0.8 * self.params.slot))
        )
        self.engine.schedule_at(max(start, self.now), self._guarded(self._report))

    def _report(self) -> None:
        if self.parent is None:
            return
        self.send(
            AggregateMessage(
                src=self.id,
                dst=self.parent,
                round_id=self.round_id,
                color=TreeColor.RED,
                value=self.assembler.assembled_value() + self.child_sum,
            )
        )


class _PdaBaseStation(_PdaNode):
    """Root of the single tree."""

    def start(self) -> None:
        self.hops = 0
        self.send(
            HelloMessage(src=self.id, dst=BROADCAST, hops=0, round_id=self.round_id)
        )

    def _handle_hello(self, message: HelloMessage) -> None:
        return

    @property
    def collected(self) -> int:
        return self.assembler.assembled_value() + self.child_sum


class PdaProtocol(AggregationProtocol):
    """Runner for slicing-only PDA rounds."""

    name = "pda"

    def __init__(
        self,
        params: Optional[PdaParams] = None,
        *,
        key_scheme_factory=PairwiseKeyScheme,
        radio_config: Optional[RadioConfig] = None,
        mac_config: Optional[MacConfig] = None,
        base_station: int = 0,
    ):
        self.params = params if params is not None else PdaParams()
        self.key_scheme_factory = key_scheme_factory
        self.radio_config = radio_config
        self.mac_config = mac_config
        self.base_station = base_station

    def run_round(
        self,
        topology: Topology,
        readings: Mapping[int, int],
        *,
        streams: RngStreams,
        round_id: int = 0,
        contributors: Optional[Set[int]] = None,
    ) -> RoundOutcome:
        validate_readings(topology, readings, self.base_station)
        keys = self.key_scheme_factory(topology.node_count)
        magnitude = self.params.magnitude or max(
            4, 2 * max((abs(int(v)) for v in readings.values()), default=0)
        )
        round_params = replace(self.params, magnitude=magnitude)

        def factory(node_id: int, network: Network) -> Node:
            cls = _PdaBaseStation if node_id == self.base_station else _PdaNode
            node = cls(node_id, network)
            node.params = round_params
            node.keys = keys
            node.round_id = round_id
            node.reading = int(readings.get(node_id, 0))
            node.contributes = node_id != self.base_station and (
                contributors is None or node_id in contributors
            )
            return node

        network = Network(
            topology,
            factory,
            streams=streams.spawn("pda", round_id),
            radio_config=self.radio_config,
            mac_config=self.mac_config,
        )
        root = network.node(self.base_station)
        assert isinstance(root, _PdaBaseStation)
        root.start()
        for node in network.iter_nodes():
            if node.id != self.base_station and isinstance(node, _PdaNode):
                network.engine.schedule_at(
                    self.params.hello_window, _begin_slicing(node)
                )
        horizon = (
            self.params.hello_window
            + self.params.slicing_window
            + self.params.assembly_guard
            + (self.params.max_depth + 2) * self.params.slot
        )
        network.run(until=horizon)
        network.run()

        participants = {
            node.id
            for node in network.iter_nodes()
            if isinstance(node, _PdaNode)
            and node.id != self.base_station
            and node.participant
        }
        return RoundOutcome(
            protocol=self.name,
            round_id=round_id,
            reported=root.collected,
            true_total=sum(int(v) for v in readings.values()),
            participant_total=sum(int(readings[i]) for i in participants),
            participants=participants,
            bytes_sent=network.trace.total_bytes_sent,
            frames_sent=network.trace.total_frames_sent,
            stats={
                "sensor_count": topology.node_count - 1,
                "slices": self.params.slices,
                "loss_rate": network.trace.loss_rate(),
                "sent_bytes_by_node": dict(network.trace.sent_bytes_by_node),
                "trace": network.trace.summary(),
            },
        )


def _begin_slicing(node: _PdaNode):
    def fire() -> None:
        node.begin_slicing()

    return fire
