"""TAG: Tiny AGgregation (Madden et al., OSDI'02) — the paper's baseline.

A single spanning tree rooted at the base station is built by a HELLO
flood (first HELLO heard wins as parent); aggregation then runs as a
depth-scheduled convergecast — nodes at hop ``h`` transmit their
partial sum in the epoch slot for depth ``h``, deepest first, exactly
as TAG divides its epoch.  No privacy, no integrity: each node sends
two frames per query (HELLO + partial result), the 2-message budget
Figure 4(a) shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Set

from ..errors import ProtocolError
from ..net.topology import Topology
from ..sim.mac import MacConfig
from ..sim.messages import BROADCAST, AggregateMessage, HelloMessage, Message
from ..sim.network import Network
from ..sim.node import Node
from ..sim.radio import RadioConfig
from ..sim.rng import RngStreams
from .base import AggregationProtocol, RoundOutcome, validate_readings

__all__ = ["TagParams", "TagProtocol"]


@dataclass
class TagParams:
    """Timing knobs for the TAG rounds.

    ``max_depth`` bounds the convergecast schedule: a node at hop ``h``
    transmits in slot ``max_depth - h`` so parents always listen after
    their children.
    """

    hello_window: float = 10.0
    slot: float = 2.0
    max_depth: int = 32
    forward_jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.hello_window <= 0 or self.slot <= 0:
            raise ProtocolError("hello_window and slot must be positive")
        if self.max_depth < 1:
            raise ProtocolError("max_depth must be >= 1")


class _TagNode(Node):
    """A sensor running TAG."""

    def __init__(self, node_id: int, network: Network):
        super().__init__(node_id, network)
        self.parent: Optional[int] = None
        self.hops: Optional[int] = None
        self.reading = 0
        self.contributes = False
        self.child_sum = 0
        self.child_count = 0
        self.params: TagParams = TagParams()
        self.round_id = 0

    # -- Phase 1: tree construction ------------------------------------
    def on_receive(self, message: Message) -> None:
        if isinstance(message, HelloMessage):
            self._handle_hello(message)
        elif isinstance(message, AggregateMessage):
            self.child_sum += message.value
            self.child_count += message.contributor_count

    def _handle_hello(self, message: HelloMessage) -> None:
        if self.parent is not None:
            return
        self.parent = message.src
        self.hops = message.hops + 1
        jitter = float(self.rng.uniform(0.0, self.params.forward_jitter))
        self.schedule(jitter, self._forward_hello)
        self._schedule_report()

    def _forward_hello(self) -> None:
        self.send(
            HelloMessage(
                src=self.id, dst=BROADCAST, hops=self.hops or 0,
                round_id=self.round_id,
            )
        )

    # -- Phase 2: depth-scheduled convergecast -------------------------
    def _schedule_report(self) -> None:
        assert self.hops is not None
        depth_slot = max(self.params.max_depth - self.hops, 0)
        start = (
            self.params.hello_window
            + depth_slot * self.params.slot
            + float(self.rng.uniform(0.0, 0.8 * self.params.slot))
        )
        self.engine.schedule_at(max(start, self.now), self._guarded(self._report))

    def _report(self) -> None:
        if self.parent is None:
            return
        own = self.reading if self.contributes else 0
        own_count = 1 if self.contributes else 0
        self.send(
            AggregateMessage(
                src=self.id,
                dst=self.parent,
                round_id=self.round_id,
                value=own + self.child_sum,
                contributor_count=own_count + self.child_count,
            )
        )


class _TagBaseStation(_TagNode):
    """The root: floods the HELLO and keeps the final sums."""

    def __init__(self, node_id: int, network: Network):
        super().__init__(node_id, network)
        #: when the last partial result arrived — the round's latency.
        self.last_result_time = 0.0

    def on_receive(self, message: Message) -> None:
        super().on_receive(message)
        if isinstance(message, AggregateMessage):
            self.last_result_time = self.now

    def start(self) -> None:
        self.hops = 0
        self.send(HelloMessage(src=self.id, dst=BROADCAST, hops=0,
                               round_id=self.round_id))

    def _handle_hello(self, message: HelloMessage) -> None:
        return  # the root never re-parents

    @property
    def collected(self) -> int:
        return self.child_sum


class TagProtocol(AggregationProtocol):
    """Runner for TAG rounds over the full radio stack."""

    name = "tag"

    def __init__(
        self,
        params: Optional[TagParams] = None,
        *,
        radio_config: Optional[RadioConfig] = None,
        mac_config: Optional[MacConfig] = None,
        base_station: int = 0,
    ):
        self.params = params if params is not None else TagParams()
        self.radio_config = radio_config
        self.mac_config = mac_config
        self.base_station = base_station

    def run_round(
        self,
        topology: Topology,
        readings: Mapping[int, int],
        *,
        streams: RngStreams,
        round_id: int = 0,
        contributors: Optional[Set[int]] = None,
    ) -> RoundOutcome:
        validate_readings(topology, readings, self.base_station)

        def factory(node_id: int, network: Network) -> Node:
            cls = _TagBaseStation if node_id == self.base_station else _TagNode
            node = cls(node_id, network)
            node.params = self.params
            node.round_id = round_id
            node.reading = int(readings.get(node_id, 0))
            node.contributes = node_id != self.base_station and (
                contributors is None or node_id in contributors
            )
            return node

        network = Network(
            topology,
            factory,
            streams=streams.spawn("tag", round_id),
            radio_config=self.radio_config,
            mac_config=self.mac_config,
        )
        root = network.node(self.base_station)
        assert isinstance(root, _TagBaseStation)
        root.start()
        horizon = (
            self.params.hello_window
            + (self.params.max_depth + 2) * self.params.slot
        )
        network.run(until=horizon)
        network.run()  # drain any MAC backoff tails

        joined = {
            node.id
            for node in network.iter_nodes()
            if isinstance(node, _TagNode)
            and node.id != self.base_station
            and node.parent is not None
        }
        eligible = contributors if contributors is not None else set(readings)
        participants = joined & set(eligible)
        return RoundOutcome(
            protocol=self.name,
            round_id=round_id,
            reported=root.collected,
            true_total=sum(int(v) for v in readings.values()),
            participant_total=sum(int(readings[i]) for i in participants),
            participants=participants,
            bytes_sent=network.trace.total_bytes_sent,
            frames_sent=network.trace.total_frames_sent,
            stats={
                "sensor_count": topology.node_count - 1,
                "tree_size": len(joined),
                "contributor_count_reported": root.child_count,
                "loss_rate": network.trace.loss_rate(),
                "sent_bytes_by_node": dict(network.trace.sent_bytes_by_node),
                "latency": root.last_result_time,
                "trace": network.trace.summary(),
            },
        )
