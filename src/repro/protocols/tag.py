"""TAG: Tiny AGgregation (Madden et al., OSDI'02) — the paper's baseline.

A single spanning tree rooted at the base station is built by a HELLO
flood (first HELLO heard wins as parent); aggregation then runs as a
depth-scheduled convergecast — nodes at hop ``h`` transmit their
partial sum in the epoch slot for depth ``h``, deepest first, exactly
as TAG divides its epoch.  No privacy, no integrity: each node sends
two frames per query (HELLO + partial result), the 2-message budget
Figure 4(a) shows.

Loss tolerance (``robustness=``, opt-in, mirroring iPDA's): partial
results become end-to-end acknowledged with bounded retransmissions
under jittered backoff; on exhausting the per-parent retry budget a
node fails over to the next strictly-shallower parent candidate it
heard during the HELLO flood.  Each partial result carries the node
ids it covers so merge points can drop re-delivered subtrees (an ACK
lost after delivery otherwise double-counts the whole branch).  The
default remains TAG's classic fire-and-forget convergecast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Set

from ..core.config import RobustnessConfig
from ..errors import ProtocolError
from ..net.topology import Topology
from ..sim.engine import ScheduledEvent
from ..sim.mac import MacConfig
from ..sim.messages import (
    BROADCAST,
    AckMessage,
    AggregateMessage,
    HelloMessage,
    Message,
)
from ..sim.network import Network
from ..sim.node import Node
from ..sim.radio import RadioConfig
from ..sim.rng import RngStreams
from .base import AggregationProtocol, RoundOutcome, validate_readings

__all__ = ["TagParams", "TagProtocol"]


@dataclass
class _PendingReport:
    """An unacknowledged partial result awaiting its end-to-end ACK."""

    message: AggregateMessage
    attempt: int
    tried: Set[int]
    timer: Optional[ScheduledEvent]


@dataclass
class TagParams:
    """Timing knobs for the TAG rounds.

    ``max_depth`` bounds the convergecast schedule: a node at hop ``h``
    transmits in slot ``max_depth - h`` so parents always listen after
    their children.
    """

    hello_window: float = 10.0
    slot: float = 2.0
    max_depth: int = 32
    forward_jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.hello_window <= 0 or self.slot <= 0:
            raise ProtocolError("hello_window and slot must be positive")
        if self.max_depth < 1:
            raise ProtocolError("max_depth must be >= 1")


class _TagNode(Node):
    """A sensor running TAG."""

    def __init__(self, node_id: int, network: Network):
        super().__init__(node_id, network)
        self.parent: Optional[int] = None
        self.hops: Optional[int] = None
        self.reading = 0
        self.contributes = False
        self.child_sum = 0
        self.child_count = 0
        self.params: TagParams = TagParams()
        self.round_id = 0
        # --- loss-tolerant mode state (inert when robust is None) ---
        self.robust: Optional[RobustnessConfig] = None
        #: every HELLO heard, src -> best hops: the fail-over candidates.
        self.heard: Dict[int, int] = {}
        self._pending: Dict[int, _PendingReport] = {}
        self._seen_aggregates: Set[int] = set()
        #: node ids already folded into ``child_sum`` — the duplicate
        #: filter for fail-over paths.
        self._merged_origins: Set[int] = set()
        self._reported = False
        self.retries_used = 0
        self.reparent_count = 0

    # -- Phase 1: tree construction ------------------------------------
    def on_receive(self, message: Message) -> None:
        if isinstance(message, HelloMessage):
            self._handle_hello(message)
        elif isinstance(message, AggregateMessage):
            self._handle_aggregate(message)
        elif isinstance(message, AckMessage):
            state = self._pending.pop(message.ref, None)
            if state is not None and state.timer is not None:
                state.timer.cancel()

    def _handle_aggregate(self, message: AggregateMessage) -> None:
        if self.robust is not None:
            if message.frame_id in self._seen_aggregates:
                self._ack(message)  # duplicate: our ACK was lost, re-ACK
                return
            self._seen_aggregates.add(message.frame_id)
            self._ack(message)
            if self._merged_origins & set(message.origins):
                # A fail-over path re-delivered a branch we already
                # merged: drop it whole (values and counts go together,
                # so the root's coverage stays honest).
                return
            self._merged_origins.update(message.origins)
        self.child_sum += message.value
        self.child_count += message.contributor_count
        if (
            self.robust is not None
            and self._reported
            and self.parent is not None
        ):
            # Late child (it retried past our own report): forward its
            # contribution upstream as a supplemental partial result.
            self._send_report(
                AggregateMessage(
                    src=self.id,
                    dst=self.parent,
                    round_id=self.round_id,
                    value=message.value,
                    contributor_count=message.contributor_count,
                    origins=message.origins,
                ),
                1,
                {self.parent},
            )

    def _ack(self, message: Message) -> None:
        self.send(
            AckMessage(
                src=self.id,
                dst=message.src,
                round_id=self.round_id,
                ref=message.frame_id,
            )
        )

    def _handle_hello(self, message: HelloMessage) -> None:
        if self.robust is not None:
            best = self.heard.get(message.src)
            if best is None or message.hops < best:
                self.heard[message.src] = message.hops
        if self.parent is not None:
            return
        self.parent = message.src
        self.hops = message.hops + 1
        jitter = float(self.rng.uniform(0.0, self.params.forward_jitter))
        self.schedule(jitter, self._forward_hello)
        self._schedule_report()

    def _forward_hello(self) -> None:
        self.send(
            HelloMessage(
                src=self.id, dst=BROADCAST, hops=self.hops or 0,
                round_id=self.round_id,
            )
        )

    # -- Phase 2: depth-scheduled convergecast -------------------------
    def _schedule_report(self) -> None:
        assert self.hops is not None
        depth_slot = max(self.params.max_depth - self.hops, 0)
        start = (
            self.params.hello_window
            + depth_slot * self.params.slot
            + float(self.rng.uniform(0.0, 0.8 * self.params.slot))
        )
        self.engine.schedule_at(max(start, self.now), self._guarded(self._report))

    def _report(self) -> None:
        if self.parent is None:
            return
        own = self.reading if self.contributes else 0
        own_count = 1 if self.contributes else 0
        origins = (
            tuple(sorted({self.id} | self._merged_origins))
            if self.robust is not None
            else ()
        )
        message = AggregateMessage(
            src=self.id,
            dst=self.parent,
            round_id=self.round_id,
            value=own + self.child_sum,
            contributor_count=own_count + self.child_count,
            origins=origins,
        )
        self._reported = True
        self._send_report(message, 1, {self.parent})

    def _send_report(
        self, message: AggregateMessage, attempt: int, tried: Set[int]
    ) -> None:
        self.send(message)
        if self.robust is None:
            return
        frame_id = message.frame_id
        timer = self.schedule(
            self.robust.report_ack_timeout,
            lambda: self._report_timeout(frame_id),
        )
        self._pending[frame_id] = _PendingReport(
            message=message, attempt=attempt, tried=set(tried), timer=timer
        )

    def _report_timeout(self, frame_id: int) -> None:
        """Retry the partial result; after the per-parent cap, fail over."""
        robust = self.robust
        state = self._pending.pop(frame_id, None)
        if state is None or robust is None:
            return
        self.retries_used += 1
        jitter = float(self.rng.uniform(0.5, 1.5))
        delay = jitter * robust.retry_backoff * (2 ** (state.attempt - 1))
        if state.attempt < robust.report_retry_limit:
            # Same frame, same parent: duplicates dedup by frame_id.
            self.schedule(
                delay,
                lambda: self._send_report(
                    state.message, state.attempt + 1, state.tried
                ),
            )
            return
        backup = self._backup_parent(state.tried)
        if backup is None:
            return  # no shallower candidate left; this subtree is cut off
        self.reparent_count += 1
        self.parent = backup
        fresh = AggregateMessage(
            src=self.id,
            dst=backup,
            round_id=state.message.round_id,
            value=state.message.value,
            contributor_count=state.message.contributor_count,
            origins=state.message.origins,
        )
        self.schedule(
            delay,
            lambda: self._send_report(fresh, 1, state.tried | {backup}),
        )

    def _backup_parent(self, tried: Set[int]) -> Optional[int]:
        """Next untried HELLO source strictly shallower than this node.

        Strict shallowness keeps fail-over acyclic: a re-routed partial
        result always moves toward the base station.
        """
        if self.hops is None:
            return None
        candidates = [
            src
            for src, hops in self.heard.items()
            if hops < self.hops and src not in tried
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda s: (self.heard[s], s))


class _TagBaseStation(_TagNode):
    """The root: floods the HELLO and keeps the final sums."""

    def __init__(self, node_id: int, network: Network):
        super().__init__(node_id, network)
        #: when the last partial result arrived — the round's latency.
        self.last_result_time = 0.0

    def on_receive(self, message: Message) -> None:
        super().on_receive(message)
        if isinstance(message, AggregateMessage):
            self.last_result_time = self.now

    def start(self) -> None:
        self.hops = 0
        self.send(HelloMessage(src=self.id, dst=BROADCAST, hops=0,
                               round_id=self.round_id))

    def _handle_hello(self, message: HelloMessage) -> None:
        return  # the root never re-parents

    @property
    def collected(self) -> int:
        return self.child_sum


class TagProtocol(AggregationProtocol):
    """Runner for TAG rounds over the full radio stack."""

    name = "tag"

    def __init__(
        self,
        params: Optional[TagParams] = None,
        *,
        radio_config: Optional[RadioConfig] = None,
        mac_config: Optional[MacConfig] = None,
        base_station: int = 0,
        robustness: Optional[RobustnessConfig] = None,
    ):
        self.params = params if params is not None else TagParams()
        self.radio_config = radio_config
        self.mac_config = mac_config
        self.base_station = base_station
        #: opt-in ACK'd convergecast; None keeps classic fire-and-forget.
        self.robustness = robustness

    def run_round(
        self,
        topology: Topology,
        readings: Mapping[int, int],
        *,
        streams: RngStreams,
        round_id: int = 0,
        contributors: Optional[Set[int]] = None,
        fault_plan=None,
    ) -> RoundOutcome:
        """Run one TAG round; ``fault_plan`` injects crashes/burst loss."""
        validate_readings(topology, readings, self.base_station)

        def factory(node_id: int, network: Network) -> Node:
            cls = _TagBaseStation if node_id == self.base_station else _TagNode
            node = cls(node_id, network)
            node.params = self.params
            node.robust = self.robustness
            node.round_id = round_id
            node.reading = int(readings.get(node_id, 0))
            node.contributes = node_id != self.base_station and (
                contributors is None or node_id in contributors
            )
            return node

        network = Network(
            topology,
            factory,
            streams=streams.spawn("tag", round_id),
            radio_config=self.radio_config,
            mac_config=self.mac_config,
            fault_plan=fault_plan,
        )
        root = network.node(self.base_station)
        assert isinstance(root, _TagBaseStation)
        root.start()
        horizon = (
            self.params.hello_window
            + (self.params.max_depth + 2) * self.params.slot
        )
        network.run(until=horizon)
        network.run()  # drain any MAC backoff tails

        joined = {
            node.id
            for node in network.iter_nodes()
            if isinstance(node, _TagNode)
            and node.id != self.base_station
            and node.parent is not None
        }
        eligible = contributors if contributors is not None else set(readings)
        participants = joined & set(eligible)
        return RoundOutcome(
            protocol=self.name,
            round_id=round_id,
            reported=root.collected,
            true_total=sum(int(v) for v in readings.values()),
            participant_total=sum(int(readings[i]) for i in participants),
            participants=participants,
            bytes_sent=network.trace.total_bytes_sent,
            frames_sent=network.trace.total_frames_sent,
            stats={
                "sensor_count": topology.node_count - 1,
                "tree_size": len(joined),
                "contributor_count_reported": root.child_count,
                "coverage": (
                    root.child_count / max(len(eligible), 1)
                ),
                "retries_used": sum(
                    node.retries_used
                    for node in network.iter_nodes()
                    if isinstance(node, _TagNode)
                ),
                "reparent_count": sum(
                    node.reparent_count
                    for node in network.iter_nodes()
                    if isinstance(node, _TagNode)
                ),
                "loss_rate": network.trace.loss_rate(),
                "sent_bytes_by_node": dict(network.trace.sent_bytes_by_node),
                "latency": root.last_result_time,
                "trace": network.trace.summary(),
            },
        )
