"""Additive aggregate encodings (Section II-B).

The paper restricts attention to additive aggregation ``y = Σ r_i``
because it is the base of most statistics: AVERAGE, COUNT, VARIANCE and
STDDEV are ratios of additive components, and MIN/MAX are limits of
power means ``(Σ x^k)^(1/k)``.  An :class:`AdditiveStatistic` describes
how each sensor encodes its reading into one or more additive
components and how the base station decodes the component totals back
into the statistic.

SUM/COUNT/AVERAGE/VARIANCE use exact integer components and therefore
survive the slicing pipeline losslessly.  The power-mean MIN/MAX
approximation uses Python's arbitrary-precision integers, so it is
exact as arithmetic but approximate as a statistic (the paper's
``k -> ∞`` limit truncated at finite ``k``).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import ProtocolError

__all__ = [
    "AdditiveStatistic",
    "SumStatistic",
    "CountStatistic",
    "AverageStatistic",
    "VarianceStatistic",
    "StdDevStatistic",
    "PowerMeanMax",
    "PowerMeanMin",
    "statistic_by_name",
]


class AdditiveStatistic(ABC):
    """A statistic computable from additive per-sensor components."""

    #: human-readable identifier used in queries and CLIs.
    name: str = "abstract"

    @property
    @abstractmethod
    def component_count(self) -> int:
        """How many parallel additive aggregations this statistic needs."""

    @abstractmethod
    def encode(self, reading: int) -> Tuple[int, ...]:
        """Per-sensor additive contributions for ``reading``."""

    @abstractmethod
    def decode(self, totals: Sequence[int]) -> float:
        """Recover the statistic from the component totals."""

    def _check_totals(self, totals: Sequence[int]) -> None:
        if len(totals) != self.component_count:
            raise ProtocolError(
                f"{self.name} expects {self.component_count} component "
                f"totals, got {len(totals)}"
            )


class SumStatistic(AdditiveStatistic):
    """Plain additive SUM — the aggregate the paper evaluates."""

    name = "sum"

    @property
    def component_count(self) -> int:
        return 1

    def encode(self, reading: int) -> Tuple[int, ...]:
        return (int(reading),)

    def decode(self, totals: Sequence[int]) -> float:
        self._check_totals(totals)
        return float(totals[0])


class CountStatistic(AdditiveStatistic):
    """COUNT: every participating sensor contributes 1.

    This is the aggregation Figure 6 plots (red vs blue COUNT).
    """

    name = "count"

    @property
    def component_count(self) -> int:
        return 1

    def encode(self, reading: int) -> Tuple[int, ...]:
        return (1,)

    def decode(self, totals: Sequence[int]) -> float:
        self._check_totals(totals)
        return float(totals[0])


class AverageStatistic(AdditiveStatistic):
    """AVERAGE = Σr / Σ1."""

    name = "average"

    @property
    def component_count(self) -> int:
        return 2

    def encode(self, reading: int) -> Tuple[int, ...]:
        return (int(reading), 1)

    def decode(self, totals: Sequence[int]) -> float:
        self._check_totals(totals)
        total, count = totals
        if count == 0:
            raise ProtocolError("average of zero sensors is undefined")
        return total / count


class VarianceStatistic(AdditiveStatistic):
    """Population variance via the paper's three-component trick.

    Each sensor contributes ``(r^2, r, 1)``; the base station computes
    ``Σr²/N − (Σr/N)²`` (Section II-B).
    """

    name = "variance"

    @property
    def component_count(self) -> int:
        return 3

    def encode(self, reading: int) -> Tuple[int, ...]:
        r = int(reading)
        return (r * r, r, 1)

    def decode(self, totals: Sequence[int]) -> float:
        self._check_totals(totals)
        sum_sq, total, count = totals
        if count == 0:
            raise ProtocolError("variance of zero sensors is undefined")
        mean = total / count
        return sum_sq / count - mean * mean


class StdDevStatistic(VarianceStatistic):
    """Population standard deviation (square root of the variance)."""

    name = "stddev"

    def decode(self, totals: Sequence[int]) -> float:
        variance = super().decode(totals)
        return math.sqrt(max(variance, 0.0))


class PowerMeanMax(AdditiveStatistic):
    """MAX approximated as ``(Σ x^k)^(1/k)`` for large ``k``.

    Readings must be non-negative.  The relative error is bounded by
    ``N^(1/k) - 1`` for N sensors, so ``k = 32`` puts it under 20% for
    N = 600 and under 2.2% for k = 256; choose ``exponent`` to taste —
    components are arbitrary-precision integers so nothing overflows.
    """

    name = "max"

    def __init__(self, exponent: int = 32):
        if exponent < 1:
            raise ProtocolError("exponent must be >= 1")
        self.exponent = exponent

    @property
    def component_count(self) -> int:
        return 1

    def encode(self, reading: int) -> Tuple[int, ...]:
        r = int(reading)
        if r < 0:
            raise ProtocolError("power-mean MAX requires non-negative readings")
        return (r**self.exponent,)

    def decode(self, totals: Sequence[int]) -> float:
        self._check_totals(totals)
        total = totals[0]
        if total < 0:
            raise ProtocolError("negative power-sum: inconsistent inputs")
        if total == 0:
            return 0.0
        # Arbitrary-precision k-th root via float log with integer refine.
        estimate = int(round(math.exp(math.log(total) / self.exponent)))
        return float(_refine_root(total, self.exponent, estimate))


class PowerMeanMin(AdditiveStatistic):
    """MIN approximated via the reciprocal power mean.

    Uses ``min(x) ~= ((Σ x^-k)/1)^(-1/k)``; to stay in integer
    arithmetic each sensor contributes ``floor(S / x^k)`` for a large
    common scale ``S``, and the decoder inverts the scaled sum.
    Readings must be strictly positive.
    """

    name = "min"

    def __init__(self, exponent: int = 32, scale_bits: int = 512):
        if exponent < 1:
            raise ProtocolError("exponent must be >= 1")
        if scale_bits < 64:
            raise ProtocolError("scale_bits must be >= 64")
        self.exponent = exponent
        self.scale = 1 << scale_bits

    @property
    def component_count(self) -> int:
        return 1

    def encode(self, reading: int) -> Tuple[int, ...]:
        r = int(reading)
        if r <= 0:
            raise ProtocolError("power-mean MIN requires positive readings")
        return (self.scale // (r**self.exponent),)

    def decode(self, totals: Sequence[int]) -> float:
        self._check_totals(totals)
        total = totals[0]
        if total <= 0:
            raise ProtocolError("non-positive reciprocal power-sum")
        # total ~= S / min^k  =>  min ~= (S / total)^(1/k)
        ratio = self.scale // total
        if ratio <= 0:
            return 1.0
        estimate = int(round(math.exp(math.log(ratio) / self.exponent)))
        return float(_refine_root(ratio, self.exponent, estimate))


def _refine_root(value: int, k: int, estimate: int) -> int:
    """Return the integer closest to ``value ** (1/k)`` near ``estimate``."""
    best = max(estimate, 0)
    candidates = {max(best + delta, 0) for delta in (-2, -1, 0, 1, 2)}
    return min(candidates, key=lambda c: abs(c**k - value))


_REGISTRY: List[AdditiveStatistic] = [
    SumStatistic(),
    CountStatistic(),
    AverageStatistic(),
    VarianceStatistic(),
    StdDevStatistic(),
    PowerMeanMax(),
    PowerMeanMin(),
]


def statistic_by_name(name: str) -> AdditiveStatistic:
    """Look up a statistic by its ``name`` (case-insensitive)."""
    wanted = name.strip().lower()
    for statistic in _REGISTRY:
        if statistic.name == wanted:
            return statistic
    known = ", ".join(s.name for s in _REGISTRY)
    raise ProtocolError(f"unknown statistic {name!r} (known: {known})")
