"""Common protocol interface and round outcome types.

Every aggregation protocol (TAG, PDA, iPDA, KIPDA) exposes the same
entry point — :meth:`AggregationProtocol.run_round` — taking a topology
and per-node readings and returning a :class:`RoundOutcome`.  The
experiment harness sweeps protocols interchangeably through this
interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Set

from ..errors import ProtocolError
from ..net.topology import Topology
from ..sim.rng import RngStreams

__all__ = ["RoundOutcome", "AggregationProtocol", "validate_readings"]


@dataclass
class RoundOutcome:
    """What one aggregation round produced.

    Attributes
    ----------
    protocol:
        Protocol name (``tag``, ``ipda``, ...).
    reported:
        The aggregate the base station reports, or None when it rejected
        the round (iPDA integrity failure) or received nothing.
    true_total:
        Ground-truth sum over *all* sensor readings — the denominator of
        the paper's accuracy metric (Section IV-B.3).
    participant_total:
        Ground-truth sum restricted to nodes that actually contributed
        (useful to attribute loss to non-participation vs. collisions).
    participants:
        Node ids that contributed their reading.
    stats:
        Free-form per-protocol extras (tree sums, byte counts, ...).
    """

    protocol: str
    round_id: int
    reported: Optional[int]
    true_total: int
    participant_total: int
    participants: Set[int] = field(default_factory=set)
    bytes_sent: int = 0
    frames_sent: int = 0
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        """Collected / real ratio, the paper's accuracy metric.

        1.0 means no data loss; 0.0 means the round was rejected or the
        base station heard nothing.
        """
        if self.reported is None or self.true_total == 0:
            return 0.0
        return self.reported / self.true_total

    @property
    def participation_fraction(self) -> float:
        """Share of sensors that contributed (Figure 8(b) metric)."""
        total_sensors = self.stats.get("sensor_count")
        if not total_sensors:
            return 0.0
        return len(self.participants) / int(total_sensors)


class AggregationProtocol(ABC):
    """Interface every aggregation scheme implements."""

    #: protocol identifier used in outcome records and tables.
    name: str = "abstract"

    @abstractmethod
    def run_round(
        self,
        topology: Topology,
        readings: Mapping[int, int],
        *,
        streams: RngStreams,
        round_id: int = 0,
        contributors: Optional[Set[int]] = None,
    ) -> RoundOutcome:
        """Run one aggregation round and return its outcome.

        ``readings`` maps every sensor id (not the base station) to its
        integer reading.  ``contributors``, when given, restricts which
        sensors inject their own reading (they still route and
        aggregate) — the hook the polluter-localisation protocol uses.
        """


def validate_readings(
    topology: Topology, readings: Mapping[int, int], base_station: int
) -> None:
    """Sanity-check a readings map against a topology."""
    if base_station in readings:
        raise ProtocolError("the base station does not produce a reading")
    for node_id in readings:
        if not 0 <= node_id < topology.node_count:
            raise ProtocolError(f"reading for unknown node id {node_id}")
    expected = topology.node_count - 1
    if len(readings) != expected:
        raise ProtocolError(
            f"expected readings for all {expected} sensors, got {len(readings)}"
        )
