"""Aggregation protocols: iPDA, the TAG baseline, and relatives."""

from .aggregates import (
    AdditiveStatistic,
    AverageStatistic,
    CountStatistic,
    PowerMeanMax,
    PowerMeanMin,
    StdDevStatistic,
    SumStatistic,
    VarianceStatistic,
    statistic_by_name,
)
from .base import AggregationProtocol, RoundOutcome
from .ipda import IpdaOutcome, IpdaProtocol
from .epochs import EpochedIpdaSession, EpochOutcome, RadioAggregationService
from .kipda import KipdaConfig, KipdaMaxProtocol, KipdaMinProtocol, KipdaOutcome
from .mipda import MipdaOutcome, MipdaProtocol
from .pda import PdaParams, PdaProtocol
from .tag import TagParams, TagProtocol

__all__ = [
    "AggregationProtocol",
    "RoundOutcome",
    "IpdaProtocol",
    "IpdaOutcome",
    "TagProtocol",
    "TagParams",
    "PdaProtocol",
    "PdaParams",
    "KipdaMaxProtocol",
    "KipdaMinProtocol",
    "EpochedIpdaSession",
    "MipdaProtocol",
    "MipdaOutcome",
    "EpochOutcome",
    "RadioAggregationService",
    "KipdaConfig",
    "KipdaOutcome",
    "AdditiveStatistic",
    "SumStatistic",
    "CountStatistic",
    "AverageStatistic",
    "VarianceStatistic",
    "StdDevStatistic",
    "PowerMeanMax",
    "PowerMeanMin",
    "statistic_by_name",
]
