"""KIPDA-style k-indistinguishable aggregation (extension).

The task header's title points at the *indistinguishable privacy* line
of work that followed iPDA (KIPDA: k-indistinguishable
privacy-preserving data aggregation, by the same group).  This module
implements its core idea for MAX/MIN aggregation, where slicing does
not apply and encryption is avoided entirely:

* every node publishes a *vector* of ``k`` values;
* a secret position set (shared with the base station at deployment)
  marks which entries may carry real data — node ``i`` writes its
  reading into one secret-real position and camouflage elsewhere;
* camouflage placed in *real* positions must not exceed the node's own
  reading (so it can never corrupt a MAX), while camouflage in fake
  positions is unconstrained noise;
* aggregators combine vectors element-wise (max), no decryption needed;
* the base station reads the true maximum off the real positions.

An eavesdropper seeing a vector cannot tell which of the ``k`` entries
is real — each reading is *k-indistinguishable* — and the chance of
guessing a real position is ``m/k`` for ``m`` real positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set

import numpy as np

from ..errors import ConfigurationError, ProtocolError
from ..net.graphs import bfs_tree, children_map
from ..net.topology import Topology
from ..sim.rng import RngStreams

__all__ = [
    "KipdaConfig",
    "KipdaOutcome",
    "KipdaMaxProtocol",
    "KipdaMinProtocol",
]


@dataclass
class KipdaConfig:
    """Parameters of the camouflage vector.

    ``vector_size`` is ``k`` (total positions); ``real_positions`` is
    ``m`` (secret positions allowed to carry data).  Camouflage values
    in fake positions are drawn above the data range to be convincing;
    ``camouflage_low``/``camouflage_high`` bound them.
    """

    vector_size: int = 12
    real_positions: int = 3
    camouflage_low: int = 0
    camouflage_high: int = 1_000

    def __post_init__(self) -> None:
        if self.real_positions < 1:
            raise ConfigurationError("need at least one real position")
        if self.vector_size <= self.real_positions:
            raise ConfigurationError("vector_size must exceed real_positions")
        if self.camouflage_low > self.camouflage_high:
            raise ConfigurationError("camouflage bounds out of order")

    @property
    def indistinguishability(self) -> float:
        """Probability an eavesdropper guesses a real position: m/k."""
        return self.real_positions / self.vector_size


@dataclass
class KipdaOutcome:
    """Result of one KIPDA MAX round."""

    reported: Optional[int]
    true_max: int
    participants: Set[int] = field(default_factory=set)
    vectors_published: int = 0

    @property
    def exact(self) -> bool:
        """Did the protocol recover the true maximum?"""
        return self.reported == self.true_max


class _KipdaExtremumProtocol:
    """Shared machinery for k-indistinguishable MAX/MIN aggregation.

    Runs losslessly on the topology (the privacy mechanism is the
    contribution here, not the channel); the radio-level behaviour
    matches TAG's single convergecast with vector payloads.
    """

    name = "kipda"

    def __init__(self, config: Optional[KipdaConfig] = None, *, base_station: int = 0):
        self.config = config if config is not None else KipdaConfig()
        self.base_station = base_station

    # -- extremum-specific hooks ---------------------------------------
    def _combine(self, a: int, b: int) -> int:
        raise NotImplementedError

    def _extreme(self, values):
        raise NotImplementedError

    def _real_camouflage(self, reading: int, rng: np.random.Generator) -> int:
        """Camouflage for a non-chosen *real* position.

        Must never beat the reading at the combine operation, or it
        would corrupt the aggregate.
        """
        raise NotImplementedError

    def _check_readings(self, values) -> None:
        raise NotImplementedError

    # -- common machinery -------------------------------------------------
    def deploy_secret(self, rng: np.random.Generator) -> List[int]:
        """Draw the secret real-position set shared with every node."""
        positions = rng.choice(
            self.config.vector_size,
            size=self.config.real_positions,
            replace=False,
        )
        return sorted(int(p) for p in positions)

    def build_vector(
        self,
        reading: int,
        secret: Sequence[int],
        rng: np.random.Generator,
    ) -> List[int]:
        """Encode ``reading`` into a camouflage vector.

        Real positions other than the chosen one get camouflage that
        can never beat the reading at the combine operation; fake
        positions get unconstrained camouflage.
        """
        cfg = self.config
        if len(secret) != cfg.real_positions:
            raise ProtocolError("secret size does not match configuration")
        vector = [0] * cfg.vector_size
        chosen = int(secret[int(rng.integers(0, len(secret)))])
        secret_set = set(int(p) for p in secret)
        for position in range(cfg.vector_size):
            if position == chosen:
                vector[position] = int(reading)
            elif position in secret_set:
                vector[position] = self._real_camouflage(int(reading), rng)
            else:
                vector[position] = int(
                    rng.integers(cfg.camouflage_low, cfg.camouflage_high + 1)
                )
        return vector

    def run_round(
        self,
        topology: Topology,
        readings: Mapping[int, int],
        *,
        streams: RngStreams,
        round_id: int = 0,
    ) -> KipdaOutcome:
        """Aggregate the extremum over all readings, k-indistinguishably."""
        if self.base_station in readings:
            raise ProtocolError("the base station does not produce a reading")
        if not readings:
            raise ProtocolError("need at least one reading")
        self._check_readings(readings.values())
        rng = streams.get("kipda", round_id)
        secret = self.deploy_secret(rng)

        parents = bfs_tree(topology, self.base_station)
        kids = children_map(parents)
        participants = {n for n in parents if n != self.base_station}

        vectors: Dict[int, List[int]] = {}
        published = 0
        for node_id in sorted(participants):
            if node_id in readings:
                vectors[node_id] = self.build_vector(
                    int(readings[node_id]), secret, rng
                )
                published += 1

        def combine(node_id: int) -> Optional[List[int]]:
            own = vectors.get(node_id)
            merged = list(own) if own is not None else None
            for child in kids.get(node_id, []):
                child_vec = combine(child)
                if child_vec is None:
                    continue
                if merged is None:
                    merged = list(child_vec)
                else:
                    merged = [
                        self._combine(a, b)
                        for a, b in zip(merged, child_vec)
                    ]
            return merged

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, topology.node_count * 4 + 100))
        try:
            final = combine(self.base_station)
        finally:
            sys.setrecursionlimit(old_limit)

        reported = (
            self._extreme(final[p] for p in secret)
            if final is not None
            else None
        )
        reachable = participants & set(readings)
        true_value = (
            self._extreme(int(readings[i]) for i in reachable)
            if reachable
            else 0
        )
        return KipdaOutcome(
            reported=reported,
            true_max=true_value,
            participants=reachable,
            vectors_published=published,
        )


class KipdaMaxProtocol(_KipdaExtremumProtocol):
    """k-indistinguishable MAX aggregation over a logical BFS tree."""

    name = "kipda-max"

    def _combine(self, a: int, b: int) -> int:
        return max(a, b)

    def _extreme(self, values):
        return max(values)

    def _real_camouflage(self, reading: int, rng: np.random.Generator) -> int:
        low = min(self.config.camouflage_low, reading)
        return int(rng.integers(low, reading + 1))

    def _check_readings(self, values) -> None:
        if min(int(v) for v in values) < self.config.camouflage_low:
            raise ProtocolError(
                "readings below camouflage_low would be distinguishable"
            )


class KipdaMinProtocol(_KipdaExtremumProtocol):
    """k-indistinguishable MIN aggregation (element-wise minimum).

    Symmetric to MAX: real-position camouflage must sit *at or above*
    the node's reading so it can never drag the minimum below truth.
    """

    name = "kipda-min"

    def _combine(self, a: int, b: int) -> int:
        return min(a, b)

    def _extreme(self, values):
        return min(values)

    def _real_camouflage(self, reading: int, rng: np.random.Generator) -> int:
        high = max(self.config.camouflage_high, reading)
        return int(rng.integers(reading, high + 1))

    def _check_readings(self, values) -> None:
        if max(int(v) for v in values) > self.config.camouflage_high:
            raise ProtocolError(
                "readings above camouflage_high would be distinguishable"
            )
