"""iPDA over the full radio stack (Sections III-B/C/D end to end).

Phase I — the base station floods HELLOs as an aggregator of both
colours; a node that has heard both colours waits
``role_decision_delay`` collecting more HELLOs, elects its role
(Equations 1–2), picks the shallowest same-colour aggregator as parent
and, if it became an aggregator, re-broadcasts the HELLO.

Phase II — every participating node cuts its reading twice (one cut per
colour), link-encrypts each piece under the key-management scheme, and
scatters the pieces to ``l`` aggregators of each colour over the
slicing window; aggregators decrypt and assemble ``r(j)``.

Phase III — each tree runs a depth-scheduled convergecast of the
assembled values; the base station compares ``S_red`` and ``S_blue``
and accepts iff they agree within ``Th``.

Attack hooks: ``polluters`` adds an offset to a node's outgoing
intermediate result (data-pollution, Section II-C); ``contributors``
restricts which sensors inject their reading (the bisection hook for
polluter localisation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Set

from ..core.config import IpdaConfig
from ..core.integrity import IntegrityChecker, VerificationResult
from ..core.slicing import SliceAssembler, plan_slices
from ..core.trees import role_probabilities
from ..crypto.envelope import make_nonce, open_sealed, seal
from ..crypto.keys import KeyManagementScheme, PairwiseKeyScheme
from ..errors import ProtocolError
from ..net.topology import Topology
from ..sim.mac import MacConfig
from ..sim.messages import (
    BROADCAST,
    AggregateMessage,
    HelloMessage,
    Message,
    SliceMessage,
    TreeColor,
)
from ..sim.network import Network
from ..sim.node import Node
from ..sim.radio import RadioConfig
from ..sim.rng import RngStreams
from .base import AggregationProtocol, RoundOutcome, validate_readings

__all__ = ["IpdaOutcome", "IpdaProtocol"]

#: Convergecast depth bound (slots), mirroring TAG's epoch division.
MAX_DEPTH_SLOTS = 32


@dataclass
class IpdaOutcome(RoundOutcome):
    """A :class:`RoundOutcome` extended with iPDA's dual-tree results."""

    s_red: int = 0
    s_blue: int = 0
    verification: Optional[VerificationResult] = None
    covered: Set[int] = field(default_factory=set)

    @property
    def accepted(self) -> bool:
        """Did the base station accept the round?"""
        return self.verification is not None and self.verification.accepted


class _IpdaNode(Node):
    """A sensor running iPDA."""

    def __init__(self, node_id: int, network: Network):
        super().__init__(node_id, network)
        self.config: IpdaConfig = IpdaConfig()
        self.keys: Optional[KeyManagementScheme] = None
        self.round_id = 0
        self.reading = 0
        self.contributes = False
        self.pollution_offset = 0
        self.magnitude = 4
        self.base_station = 0

        self.heard: Dict[TreeColor, Dict[int, int]] = {
            TreeColor.RED: {},
            TreeColor.BLUE: {},
        }
        #: neighbours caught announcing both colours (Section III-B: the
        #: shared medium makes the duplicity visible; such nodes are
        #: excluded from both trees).
        self.blacklist: Set[int] = set()
        self._hello_colors: Dict[int, Set[TreeColor]] = {}
        self.color: Optional[TreeColor] = None
        self.parent: Optional[int] = None
        self.hops: Optional[int] = None
        self.decided = False
        self._decision_pending = False
        self.participant = False
        self.assemblers: Dict[TreeColor, SliceAssembler] = {}
        self.child_sum: Dict[TreeColor, int] = {
            TreeColor.RED: 0,
            TreeColor.BLUE: 0,
        }
        self.mismatched_aggregates = 0
        self._slice_seq = 0
        #: single-round mode schedules the Phase-III report right after
        #: role election; the epoched session drives reports itself.
        self.auto_report = True

    # ------------------------------------------------------------------
    # Receive dispatch
    # ------------------------------------------------------------------
    def on_receive(self, message: Message) -> None:
        if isinstance(message, HelloMessage):
            self._handle_hello(message)
        elif isinstance(message, SliceMessage):
            self._handle_slice(message)
        elif isinstance(message, AggregateMessage):
            self._handle_aggregate(message)

    # ------------------------------------------------------------------
    # Phase I: role election and tree joining
    # ------------------------------------------------------------------
    def _handle_hello(self, message: HelloMessage) -> None:
        if message.color is None:
            raise ProtocolError("iPDA HELLO must carry a colour")
        if message.src in self.blacklist:
            return
        # Two-faced detection (Section III-B): the same neighbour
        # announcing both colours is an adversary trying to sit on both
        # trees; the shared medium makes the duplicity visible.  The
        # base station legitimately roots both trees.
        if message.src != self.base_station:
            seen = self._hello_colors.setdefault(message.src, set())
            seen.add(message.color)
            if len(seen) > 1:
                self.blacklist.add(message.src)
                for table in self.heard.values():
                    table.pop(message.src, None)
                if self.parent == message.src and self.color is not None:
                    self._repick_parent()
                return
        table = self.heard[message.color]
        if message.src not in table or message.hops < table[message.src]:
            table[message.src] = message.hops
        if self.decided or self._decision_pending:
            return
        if self.heard[TreeColor.RED] and self.heard[TreeColor.BLUE]:
            self._decision_pending = True
            self.schedule(self.config.timing.role_decision_delay, self._decide)

    def _repick_parent(self) -> None:
        """Re-parent after the current parent was blacklisted."""
        assert self.color is not None
        own_heard = self.heard[self.color]
        if own_heard:
            self.parent = min(own_heard, key=lambda a: (own_heard[a], a))
            self.hops = own_heard[self.parent] + 1
        else:
            self.parent = None  # orphaned: this subtree's data is lost

    def _decide(self) -> None:
        if self.decided:
            return
        self.decided = True
        n_red = len(self.heard[TreeColor.RED])
        n_blue = len(self.heard[TreeColor.BLUE])
        p_red, p_blue = role_probabilities(
            n_red,
            n_blue,
            mode=self.config.role_mode,
            budget=self.config.aggregator_budget,
        )
        draw = float(self.rng.random())
        if draw < p_red:
            self.color = TreeColor.RED
        elif draw < p_red + p_blue:
            self.color = TreeColor.BLUE
        else:
            self.color = None
            return
        own_heard = self.heard[self.color]
        self.parent = min(own_heard, key=lambda a: (own_heard[a], a))
        self.hops = own_heard[self.parent] + 1
        self.assemblers[self.color] = SliceAssembler(self.id)
        self.send(
            HelloMessage(
                src=self.id,
                dst=BROADCAST,
                color=self.color,
                hops=self.hops,
                round_id=self.round_id,
            )
        )
        self._schedule_report()

    # ------------------------------------------------------------------
    # Phase II: slicing and assembling
    # ------------------------------------------------------------------
    def begin_slicing(self) -> None:
        """Called at the start of the slicing window by the runner."""
        if not self.contributes:
            return
        candidates = {
            color: self._slice_candidates(color)
            for color in (TreeColor.RED, TreeColor.BLUE)
        }
        try:
            plans = plan_slices(
                self.id,
                self.reading,
                own_color=self.color,
                red_candidates=sorted(candidates[TreeColor.RED]),
                blue_candidates=sorted(candidates[TreeColor.BLUE]),
                pieces=self.config.slices,
                rng=self.rng,
                magnitude=self.magnitude,
            )
        except ProtocolError:
            return  # not enough aggregators in range: sit out (factor (b))
        self.participant = True
        window = 0.9 * self.config.timing.slicing_window
        for color, plan in plans.items():
            if plan.kept is not None:
                self.assemblers[color].keep(plan.kept)
            for target, piece in plan.outgoing:
                delay = float(self.rng.uniform(0.0, window))
                self.schedule(
                    delay, self._slice_sender(target, piece, color)
                )

    def _slice_candidates(self, color: TreeColor) -> Set[int]:
        assert self.keys is not None
        out = set()
        for aggregator in self.heard[color]:
            if aggregator == self.id:
                continue
            if self.keys.can_communicate(self.id, aggregator):
                out.add(aggregator)
        return out

    def _slice_sender(self, target: int, piece: int, color: TreeColor):
        def fire() -> None:
            assert self.keys is not None
            self._slice_seq += 1
            seq = self._slice_seq
            nonce = make_nonce(self.id, target, self.round_id, seq)
            key = self.keys.link_key(self.id, target)
            self.send(
                SliceMessage(
                    src=self.id,
                    dst=target,
                    round_id=self.round_id,
                    color=color,
                    seq=seq,
                    ciphertext=seal(piece, key, nonce),
                )
            )

        return fire

    def _handle_slice(self, message: SliceMessage) -> None:
        if message.color is None:
            raise ProtocolError("slice without a colour tag")
        assembler = self.assemblers.get(message.color)
        if assembler is None:
            return  # stray slice for a tree we are not on; drop it
        assert self.keys is not None
        key = self.keys.link_key(message.src, self.id)
        nonce = make_nonce(message.src, self.id, message.round_id, message.seq)
        assembler.receive(
            message.src, open_sealed(message.ciphertext, key, nonce)
        )

    # ------------------------------------------------------------------
    # Phase III: convergecast along the coloured trees
    # ------------------------------------------------------------------
    def _schedule_report(self) -> None:
        if not self.auto_report:
            return
        assert self.hops is not None
        timing = self.config.timing
        phase3_start = (
            timing.tree_construction_window
            + timing.slicing_window
            + timing.assembly_guard
        )
        depth_slot = max(MAX_DEPTH_SLOTS - self.hops, 0)
        when = (
            phase3_start
            + depth_slot * timing.aggregation_slot
            + float(self.rng.uniform(0.0, 0.8 * timing.aggregation_slot))
        )
        self.engine.schedule_at(max(when, self.now), self._guarded(self._report))

    def _report(self) -> None:
        if self.color is None or self.parent is None:
            return
        assembled = self.assemblers[self.color].assembled_value()
        value = assembled + self.child_sum[self.color] + self.pollution_offset
        self.send(
            AggregateMessage(
                src=self.id,
                dst=self.parent,
                round_id=self.round_id,
                color=self.color,
                value=value,
                contributor_count=self.assemblers[self.color].received_count,
            )
        )

    def _handle_aggregate(self, message: AggregateMessage) -> None:
        if message.color is None:
            raise ProtocolError("iPDA aggregate must carry a colour")
        if message.color is not self.color:
            self.mismatched_aggregates += 1
            return
        self.child_sum[message.color] += message.value

    # ------------------------------------------------------------------
    # Introspection used by the runner
    # ------------------------------------------------------------------
    @property
    def is_covered(self) -> bool:
        """Heard at least one aggregator of each colour."""
        return bool(self.heard[TreeColor.RED] and self.heard[TreeColor.BLUE])


class _TwoFacedNode(_IpdaNode):
    """The Section III-B adversary: announces itself on *both* trees.

    It elects red internally (so it aggregates somewhere) but also
    broadcasts a blue HELLO, hoping to become a parent on both trees
    and defeat the disjointness redundancy.  Honest neighbours hear the
    contradictory HELLOs and blacklist it.
    """

    def _decide(self) -> None:
        if self.decided:
            return
        self.decided = True
        heard_red = self.heard[TreeColor.RED]
        heard_blue = self.heard[TreeColor.BLUE]
        if not heard_red or not heard_blue:
            return
        self.color = TreeColor.RED
        self.parent = min(heard_red, key=lambda a: (heard_red[a], a))
        self.hops = heard_red[self.parent] + 1
        self.assemblers[TreeColor.RED] = SliceAssembler(self.id)
        self.assemblers[TreeColor.BLUE] = SliceAssembler(self.id)
        for color in (TreeColor.RED, TreeColor.BLUE):
            self.send(
                HelloMessage(
                    src=self.id,
                    dst=BROADCAST,
                    color=color,
                    hops=self.hops,
                    round_id=self.round_id,
                )
            )
        self._schedule_report()


class _IpdaBaseStation(_IpdaNode):
    """Root of both trees: floods the twin HELLOs, verifies the results."""

    def __init__(self, node_id: int, network: Network):
        super().__init__(node_id, network)
        self.decided = True
        self.assemblers = {
            TreeColor.RED: SliceAssembler(node_id),
            TreeColor.BLUE: SliceAssembler(node_id),
        }
        #: when the last partial result arrived — the round's latency.
        self.last_result_time = 0.0

    def start(self) -> None:
        for color in (TreeColor.RED, TreeColor.BLUE):
            self.send(
                HelloMessage(
                    src=self.id,
                    dst=BROADCAST,
                    color=color,
                    hops=0,
                    round_id=self.round_id,
                )
            )

    def _handle_hello(self, message: HelloMessage) -> None:
        return  # the root never re-parents or re-elects

    def _handle_aggregate(self, message: AggregateMessage) -> None:
        if message.color is None:
            raise ProtocolError("iPDA aggregate must carry a colour")
        self.child_sum[message.color] += message.value
        self.last_result_time = self.now

    def tree_sum(self, color: TreeColor) -> int:
        """``S_color``: assembled slices at the root plus child results."""
        return self.assemblers[color].assembled_value() + self.child_sum[color]


class IpdaProtocol(AggregationProtocol):
    """Runner for iPDA rounds over the full radio stack."""

    name = "ipda"

    def __init__(
        self,
        config: Optional[IpdaConfig] = None,
        *,
        key_scheme_factory=PairwiseKeyScheme,
        radio_config: Optional[RadioConfig] = None,
        mac_config: Optional[MacConfig] = None,
        base_station: int = 0,
        keep_frames: bool = False,
    ):
        self.config = config if config is not None else IpdaConfig()
        self.key_scheme_factory = key_scheme_factory
        self.radio_config = radio_config
        self.mac_config = mac_config
        self.base_station = base_station
        #: retain the full frame log in the outcome's stats — the
        #: capture surface for the radio-level eavesdropping attack.
        self.keep_frames = keep_frames

    def run_round(
        self,
        topology: Topology,
        readings: Mapping[int, int],
        *,
        streams: RngStreams,
        round_id: int = 0,
        contributors: Optional[Set[int]] = None,
        polluters: Optional[Mapping[int, int]] = None,
        failures: Optional[Mapping[int, float]] = None,
        two_faced: Optional[Set[int]] = None,
    ) -> IpdaOutcome:
        """Run one iPDA round.

        ``failures`` maps node ids to fail-stop times (simulated
        seconds): the node goes silent at that instant — the crash
        injection used by the robustness tests.  ``two_faced`` marks
        nodes running the both-colours HELLO attack of Section III-B.
        """
        validate_readings(topology, readings, self.base_station)
        keys = self.key_scheme_factory(topology.node_count)
        magnitude = self.config.effective_magnitude(readings.values())
        pollution = dict(polluters) if polluters else {}

        adversaries = set(two_faced) if two_faced else set()
        if self.base_station in adversaries:
            raise ProtocolError("the base station cannot be the adversary")

        def factory(node_id: int, network: Network) -> Node:
            if node_id == self.base_station:
                cls = _IpdaBaseStation
            elif node_id in adversaries:
                cls = _TwoFacedNode
            else:
                cls = _IpdaNode
            node = cls(node_id, network)
            node.config = self.config
            node.keys = keys
            node.round_id = round_id
            node.magnitude = magnitude
            node.base_station = self.base_station
            node.reading = int(readings.get(node_id, 0))
            node.contributes = node_id != self.base_station and (
                contributors is None or node_id in contributors
            )
            node.pollution_offset = int(pollution.get(node_id, 0))
            return node

        network = Network(
            topology,
            factory,
            streams=streams.spawn("ipda", round_id),
            radio_config=self.radio_config,
            mac_config=self.mac_config,
            keep_frames=self.keep_frames,
        )
        root = network.node(self.base_station)
        assert isinstance(root, _IpdaBaseStation)

        timing = self.config.timing
        t_slice = timing.tree_construction_window
        t_report_end = (
            t_slice
            + timing.slicing_window
            + timing.assembly_guard
            + (MAX_DEPTH_SLOTS + 2) * timing.aggregation_slot
        )
        root.start()
        for node in network.iter_nodes():
            if node.id != self.base_station:
                network.engine.schedule_at(
                    t_slice, _begin_slicing_callback(node)
                )
        if failures:
            for node_id, when in failures.items():
                network.engine.schedule_at(
                    float(when), network.node(node_id).kill
                )
        network.run(until=t_report_end)
        network.run()  # drain MAC backoff tails

        s_red = root.tree_sum(TreeColor.RED)
        s_blue = root.tree_sum(TreeColor.BLUE)
        checker = IntegrityChecker(self.config.threshold)
        verification = checker.verify(s_red, s_blue)

        participants = {
            node.id
            for node in network.iter_nodes()
            if isinstance(node, _IpdaNode)
            and node.id != self.base_station
            and node.participant
        }
        covered = {
            node.id
            for node in network.iter_nodes()
            if isinstance(node, _IpdaNode)
            and node.id != self.base_station
            and node.is_covered
        }
        red_aggs = sum(
            1
            for node in network.iter_nodes()
            if isinstance(node, _IpdaNode) and node.color is TreeColor.RED
        )
        blue_aggs = sum(
            1
            for node in network.iter_nodes()
            if isinstance(node, _IpdaNode) and node.color is TreeColor.BLUE
        )
        reported = verification.accepted_value if verification.accepted else None
        return IpdaOutcome(
            protocol=self.name,
            round_id=round_id,
            reported=reported,
            true_total=sum(int(v) for v in readings.values()),
            participant_total=sum(int(readings[i]) for i in participants),
            participants=participants,
            bytes_sent=network.trace.total_bytes_sent,
            frames_sent=network.trace.total_frames_sent,
            s_red=s_red,
            s_blue=s_blue,
            verification=verification,
            covered=covered,
            stats={
                "sensor_count": topology.node_count - 1,
                "red_aggregators": red_aggs,
                "blue_aggregators": blue_aggs,
                "adversary_blacklisted_by": sum(
                    1
                    for node in network.iter_nodes()
                    if isinstance(node, _IpdaNode) and node.blacklist
                ),
                "slices": self.config.slices,
                "magnitude": magnitude,
                "loss_rate": network.trace.loss_rate(),
                "sent_bytes_by_node": dict(network.trace.sent_bytes_by_node),
                "latency": root.last_result_time,
                "trace": network.trace.summary(),
                "frames": network.trace.frames if self.keep_frames else None,
            },
        )


def _begin_slicing_callback(node: Node):
    def fire() -> None:
        if isinstance(node, _IpdaNode):
            node.begin_slicing()

    return fire
