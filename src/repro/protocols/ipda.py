"""iPDA over the full radio stack (Sections III-B/C/D end to end).

Phase I — the base station floods HELLOs as an aggregator of both
colours; a node that has heard both colours waits
``role_decision_delay`` collecting more HELLOs, elects its role
(Equations 1–2), picks the shallowest same-colour aggregator as parent
and, if it became an aggregator, re-broadcasts the HELLO.

Phase II — every participating node cuts its reading twice (one cut per
colour), link-encrypts each piece under the key-management scheme, and
scatters the pieces to ``l`` aggregators of each colour over the
slicing window; aggregators decrypt and assemble ``r(j)``.

Phase III — each tree runs a depth-scheduled convergecast of the
assembled values; the base station compares ``S_red`` and ``S_blue``
and accepts iff they agree within ``Th``.

Attack hooks: ``polluters`` adds an offset to a node's outgoing
intermediate result (data-pollution, Section II-C); ``contributors``
restricts which sensors inject their reading (the bisection hook for
polluter localisation).

Loss tolerance (``IpdaConfig.robustness``, opt-in): slices and reports
become end-to-end acknowledged.  A slice that times out is resent to
the *same* aggregator under jittered exponential backoff — never to a
different one, because a piece whose delivery the sender cannot
confirm may have arrived, and re-scattering it elsewhere would count
it twice; if the target is truly dead the piece dies with the target's
assembler either way, which the piece accounting reports honestly.  A
report that exhausts its retries re-parents to a strictly shallower
same-colour aggregator heard in Phase I (shallower = no cycles); to
keep that duplicate-safe, every aggregate carries the origin
aggregator ids it folds in and merge points drop aggregates whose
origins they have already merged.  Child aggregates arriving after a
node already reported are forwarded upstream as supplemental reports.
Piece counts ride along with the sums so the base station can degrade
gracefully under benign loss instead of rejecting (see
:mod:`repro.core.integrity`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Set, Tuple

from ..core.config import IpdaConfig, RobustnessConfig
from ..core.integrity import (
    DegradationPolicy,
    IntegrityChecker,
    VerificationResult,
)
from ..core.slicing import SliceAssembler, plan_slices, schedule_fanout
from ..core.trees import role_probabilities
from ..crypto.envelope import make_nonce, open_sealed, seal, seal_batch
from ..crypto.keys import KeyManagementScheme, PairwiseKeyScheme
from ..errors import ProtocolError
from ..net.topology import Topology
from ..sim.engine import ScheduledEvent
from ..sim.mac import MacConfig
from ..sim.messages import (
    BROADCAST,
    AckMessage,
    AggregateMessage,
    HelloMessage,
    Message,
    SliceMessage,
    TreeColor,
)
from ..sim.network import Network
from ..sim.node import Node
from ..sim.radio import RadioConfig
from ..sim.rng import RngStreams
from .base import AggregationProtocol, RoundOutcome, validate_readings

__all__ = ["IpdaOutcome", "IpdaProtocol"]

#: Convergecast depth bound (slots), mirroring TAG's epoch division.
MAX_DEPTH_SLOTS = 32


@dataclass
class _PendingSend:
    """An unacknowledged transfer awaiting its end-to-end ACK."""

    message: Message
    attempt: int
    tried: Set[int]
    timer: Optional[ScheduledEvent]
    piece: int = 0  # slice transfers only: the plaintext piece


@dataclass
class IpdaOutcome(RoundOutcome):
    """A :class:`RoundOutcome` extended with iPDA's dual-tree results."""

    s_red: int = 0
    s_blue: int = 0
    verification: Optional[VerificationResult] = None
    covered: Set[int] = field(default_factory=set)

    @property
    def accepted(self) -> bool:
        """Did the base station accept the round?"""
        return self.verification is not None and self.verification.accepted

    @property
    def degraded(self) -> bool:
        """Did the round land in the loss-explained degraded band?"""
        return self.verification is not None and self.verification.degraded

    @property
    def outcome(self) -> str:
        """``"accepted"``, ``"degraded"``, or ``"rejected"``."""
        if self.verification is None:
            return "rejected"
        return self.verification.outcome


class _IpdaNode(Node):
    """A sensor running iPDA."""

    def __init__(self, node_id: int, network: Network):
        super().__init__(node_id, network)
        self.config: IpdaConfig = IpdaConfig()
        self.keys: Optional[KeyManagementScheme] = None
        self.round_id = 0
        self.reading = 0
        self.contributes = False
        self.pollution_offset = 0
        self.magnitude = 4
        self.base_station = 0

        self.heard: Dict[TreeColor, Dict[int, int]] = {
            TreeColor.RED: {},
            TreeColor.BLUE: {},
        }
        #: neighbours caught announcing both colours (Section III-B: the
        #: shared medium makes the duplicity visible; such nodes are
        #: excluded from both trees).
        self.blacklist: Set[int] = set()
        self._hello_colors: Dict[int, Set[TreeColor]] = {}
        self.color: Optional[TreeColor] = None
        self.parent: Optional[int] = None
        self.hops: Optional[int] = None
        self.decided = False
        self._decision_pending = False
        self.participant = False
        self.assemblers: Dict[TreeColor, SliceAssembler] = {}
        self.child_sum: Dict[TreeColor, int] = {
            TreeColor.RED: 0,
            TreeColor.BLUE: 0,
        }
        self.mismatched_aggregates = 0
        self._slice_seq = 0
        #: single-round mode schedules the Phase-III report right after
        #: role election; the epoched session drives reports itself.
        self.auto_report = True

        # --- loss-tolerant mode state (inert when robustness is None) ---
        self._pending_slices: Dict[int, _PendingSend] = {}
        self._pending_reports: Dict[int, _PendingSend] = {}
        self._seen_slices: Set[Tuple[int, int]] = set()
        self._seen_aggregates: Set[int] = set()
        #: origin aggregators already folded into ``child_sum`` — the
        #: duplicate filter for fail-over paths.
        self._merged_origins: Dict[TreeColor, Set[int]] = {
            TreeColor.RED: set(),
            TreeColor.BLUE: set(),
        }
        #: cumulative slice-piece counts received from children's reports.
        self.child_pieces: Dict[TreeColor, int] = {
            TreeColor.RED: 0,
            TreeColor.BLUE: 0,
        }
        self._reported = False
        self.retries_used = 0
        self.reparent_count = 0

    @property
    def robust(self) -> Optional[RobustnessConfig]:
        """The loss-tolerance knobs, or None in fire-and-forget mode."""
        return self.config.robustness

    def _backoff(self, attempt: int) -> float:
        """Jittered exponential backoff before protocol retry ``attempt``."""
        assert self.robust is not None
        jitter = float(self.rng.uniform(0.5, 1.5))
        return jitter * self.robust.retry_backoff * (2 ** (attempt - 1))

    def _ack(self, message: Message) -> None:
        """Acknowledge ``message`` end to end (loss-tolerant mode)."""
        self.send(
            AckMessage(
                src=self.id,
                dst=message.src,
                round_id=self.round_id,
                color=getattr(message, "color", None),
                ref=message.frame_id,
            )
        )

    # ------------------------------------------------------------------
    # Receive dispatch
    # ------------------------------------------------------------------
    def on_receive(self, message: Message) -> None:
        if isinstance(message, HelloMessage):
            self._handle_hello(message)
        elif isinstance(message, SliceMessage):
            self._handle_slice(message)
        elif isinstance(message, AggregateMessage):
            self._handle_aggregate(message)
        elif isinstance(message, AckMessage):
            self._handle_ack(message)

    def _handle_ack(self, message: AckMessage) -> None:
        """Settle the pending transfer the ACK references."""
        state = self._pending_slices.pop(message.ref, None)
        if state is None:
            state = self._pending_reports.pop(message.ref, None)
        if state is not None and state.timer is not None:
            state.timer.cancel()

    # ------------------------------------------------------------------
    # Phase I: role election and tree joining
    # ------------------------------------------------------------------
    def _handle_hello(self, message: HelloMessage) -> None:
        if message.color is None:
            raise ProtocolError("iPDA HELLO must carry a colour")
        if message.src in self.blacklist:
            return
        # Two-faced detection (Section III-B): the same neighbour
        # announcing both colours is an adversary trying to sit on both
        # trees; the shared medium makes the duplicity visible.  The
        # base station legitimately roots both trees.
        if message.src != self.base_station:
            seen = self._hello_colors.setdefault(message.src, set())
            seen.add(message.color)
            if len(seen) > 1:
                self.blacklist.add(message.src)
                for table in self.heard.values():
                    table.pop(message.src, None)
                if self.parent == message.src and self.color is not None:
                    self._repick_parent()
                return
        table = self.heard[message.color]
        if message.src not in table or message.hops < table[message.src]:
            table[message.src] = message.hops
        if self.decided or self._decision_pending:
            return
        if self.heard[TreeColor.RED] and self.heard[TreeColor.BLUE]:
            self._decision_pending = True
            self.schedule(self.config.timing.role_decision_delay, self._decide)

    def _repick_parent(self) -> None:
        """Re-parent after the current parent was blacklisted."""
        assert self.color is not None
        own_heard = self.heard[self.color]
        if own_heard:
            self.parent = min(own_heard, key=lambda a: (own_heard[a], a))
            self.hops = own_heard[self.parent] + 1
        else:
            self.parent = None  # orphaned: this subtree's data is lost

    def _decide(self) -> None:
        if self.decided:
            return
        self.decided = True
        n_red = len(self.heard[TreeColor.RED])
        n_blue = len(self.heard[TreeColor.BLUE])
        p_red, p_blue = role_probabilities(
            n_red,
            n_blue,
            mode=self.config.role_mode,
            budget=self.config.aggregator_budget,
        )
        draw = float(self.rng.random())
        if draw < p_red:
            self.color = TreeColor.RED
        elif draw < p_red + p_blue:
            self.color = TreeColor.BLUE
        else:
            self.color = None
            return
        own_heard = self.heard[self.color]
        self.parent = min(own_heard, key=lambda a: (own_heard[a], a))
        self.hops = own_heard[self.parent] + 1
        self.assemblers[self.color] = SliceAssembler(self.id)
        self.send(
            HelloMessage(
                src=self.id,
                dst=BROADCAST,
                color=self.color,
                hops=self.hops,
                round_id=self.round_id,
            )
        )
        self._schedule_report()

    # ------------------------------------------------------------------
    # Phase II: slicing and assembling
    # ------------------------------------------------------------------
    def begin_slicing(self) -> None:
        """Called at the start of the slicing window by the runner."""
        if not self.contributes:
            return
        candidates = {
            color: self._slice_candidates(color)
            for color in (TreeColor.RED, TreeColor.BLUE)
        }
        try:
            plans = plan_slices(
                self.id,
                self.reading,
                own_color=self.color,
                red_candidates=sorted(candidates[TreeColor.RED]),
                blue_candidates=sorted(candidates[TreeColor.BLUE]),
                pieces=self.config.slices,
                rng=self.rng,
                magnitude=self.magnitude,
            )
        except ProtocolError:
            return  # not enough aggregators in range: sit out (factor (b))
        self.participant = True
        window = 0.9 * self.config.timing.slicing_window
        for color, plan in plans.items():
            if plan.kept is not None:
                self.assemblers[color].keep(plan.kept)
        # Pre-assign sequence numbers in predicted fire order and seal
        # the whole two-colour fan-out in one batched cipher pass —
        # byte-identical to sealing lazily per send (the messages
        # themselves are still built at fire time, keeping frame-id
        # allocation order untouched).
        planned = schedule_fanout(
            plans, window, self.rng, first_seq=self._slice_seq + 1
        )
        self._slice_seq += len(planned)
        ciphertexts = seal_batch(
            [entry.piece for entry in planned],
            [self.keys.link_key(self.id, entry.target) for entry in planned],
            [
                make_nonce(self.id, entry.target, self.round_id, entry.seq)
                for entry in planned
            ],
        )
        for entry, ciphertext in zip(planned, ciphertexts):
            self.schedule(
                entry.delay,
                self._slice_sender(
                    entry.target,
                    entry.piece,
                    entry.color,
                    seq=entry.seq,
                    ciphertext=ciphertext,
                ),
            )

    def _slice_candidates(self, color: TreeColor) -> Set[int]:
        assert self.keys is not None
        out = set()
        for aggregator in self.heard[color]:
            if aggregator == self.id:
                continue
            if self.keys.can_communicate(self.id, aggregator):
                out.add(aggregator)
        return out

    def _slice_sender(
        self,
        target: int,
        piece: int,
        color: TreeColor,
        seq: Optional[int] = None,
        ciphertext: Optional[bytes] = None,
    ):
        def fire() -> None:
            self._send_slice(
                target, piece, color, 1, seq=seq, ciphertext=ciphertext
            )

        return fire

    def _send_slice(
        self,
        target: int,
        piece: int,
        color: TreeColor,
        attempt: int,
        message: Optional[SliceMessage] = None,
        *,
        seq: Optional[int] = None,
        ciphertext: Optional[bytes] = None,
    ) -> None:
        """Transmit one slice piece, arming the ACK timer in robust mode.

        ``seq``/``ciphertext``, when given, were pre-assigned and
        batch-sealed by :meth:`begin_slicing`; the lazy per-send path
        below produces the same bytes and is kept for direct callers.

        Resends reuse the frame (stable ``frame_id``, so the receiver's
        dedup and a late ACK still match) and always address the
        original target: a silent target may still have received the
        piece, and scattering it to a second aggregator would double it
        into the tree sum.
        """
        assert self.keys is not None
        if message is None:
            if seq is None:
                self._slice_seq += 1
                seq = self._slice_seq
            if ciphertext is None:
                nonce = make_nonce(self.id, target, self.round_id, seq)
                key = self.keys.link_key(self.id, target)
                ciphertext = seal(piece, key, nonce)
            message = SliceMessage(
                src=self.id,
                dst=target,
                round_id=self.round_id,
                color=color,
                seq=seq,
                ciphertext=ciphertext,
            )
        self.send(message)
        if self.robust is None:
            return
        frame_id = message.frame_id
        timer = self.schedule(
            self.robust.slice_ack_timeout,
            lambda: self._slice_timeout(frame_id),
        )
        self._pending_slices[frame_id] = _PendingSend(
            message=message,
            attempt=attempt,
            tried={target},
            timer=timer,
            piece=piece,
        )

    def _slice_timeout(self, frame_id: int) -> None:
        """No ACK in time: back off and resend the same frame, or give up."""
        robust = self.robust
        state = self._pending_slices.pop(frame_id, None)
        if state is None or robust is None:
            return
        if state.attempt >= robust.slice_retry_limit:
            return  # retries exhausted; this piece is lost
        message = state.message
        assert isinstance(message, SliceMessage)
        color = message.color
        assert color is not None
        self.retries_used += 1
        self.schedule(
            self._backoff(state.attempt),
            lambda: self._send_slice(
                message.dst,
                state.piece,
                color,
                state.attempt + 1,
                message,
            ),
        )

    def _handle_slice(self, message: SliceMessage) -> None:
        if message.color is None:
            raise ProtocolError("slice without a colour tag")
        assembler = self.assemblers.get(message.color)
        if assembler is None:
            return  # stray slice for a tree we are not on; drop it
        if self.robust is not None:
            dedup = (message.src, message.seq)
            if dedup in self._seen_slices:
                self._ack(message)  # our earlier ACK was lost; repeat it
                return
            self._seen_slices.add(dedup)
            self._ack(message)
        assert self.keys is not None
        key = self.keys.link_key(message.src, self.id)
        nonce = make_nonce(message.src, self.id, message.round_id, message.seq)
        assembler.receive(
            message.src, open_sealed(message.ciphertext, key, nonce)
        )

    # ------------------------------------------------------------------
    # Phase III: convergecast along the coloured trees
    # ------------------------------------------------------------------
    def _schedule_report(self) -> None:
        if not self.auto_report:
            return
        assert self.hops is not None
        timing = self.config.timing
        phase3_start = (
            timing.tree_construction_window
            + timing.slicing_window
            + timing.assembly_guard
        )
        depth_slot = max(MAX_DEPTH_SLOTS - self.hops, 0)
        when = (
            phase3_start
            + depth_slot * timing.aggregation_slot
            + float(self.rng.uniform(0.0, 0.8 * timing.aggregation_slot))
        )
        self.engine.schedule_at(max(when, self.now), self._guarded(self._report))

    def _report(self) -> None:
        if self.color is None or self.parent is None:
            return
        assembler = self.assemblers[self.color]
        assembled = assembler.assembled_value()
        value = assembled + self.child_sum[self.color] + self.pollution_offset
        if self.robust is not None:
            # Cumulative piece count: what loss-aware verification sums.
            count = assembler.piece_count + self.child_pieces[self.color]
            origins = tuple(
                sorted({self.id} | self._merged_origins[self.color])
            )
        else:
            count = assembler.received_count
            origins = ()
        message = AggregateMessage(
            src=self.id,
            dst=self.parent,
            round_id=self.round_id,
            color=self.color,
            value=value,
            contributor_count=count,
            origins=origins,
        )
        self._reported = True
        self._send_report(message, 1, {self.parent})

    def _send_report(
        self, message: AggregateMessage, attempt: int, tried: Set[int]
    ) -> None:
        """Transmit a report upstream, arming its ACK timer in robust mode."""
        self.send(message)
        if self.robust is None:
            return
        frame_id = message.frame_id
        timer = self.schedule(
            self.robust.report_ack_timeout,
            lambda: self._report_timeout(frame_id),
        )
        self._pending_reports[frame_id] = _PendingSend(
            message=message, attempt=attempt, tried=set(tried), timer=timer
        )

    def _report_timeout(self, frame_id: int) -> None:
        """Retry the report; after the per-parent cap, fail over."""
        robust = self.robust
        state = self._pending_reports.pop(frame_id, None)
        if state is None or robust is None:
            return
        message = state.message
        assert isinstance(message, AggregateMessage)
        self.retries_used += 1
        delay = self._backoff(state.attempt)
        if state.attempt < robust.report_retry_limit:
            # Same frame, same parent: a duplicate at the receiver is
            # deduplicated by frame_id and simply re-ACKed.
            self.schedule(
                delay,
                lambda: self._send_report(
                    message, state.attempt + 1, state.tried
                ),
            )
            return
        backup = self._backup_parent(state.tried)
        if backup is None:
            return  # no shallower aggregator left; this subtree is cut off
        self.reparent_count += 1
        self.parent = backup
        fresh = AggregateMessage(
            src=self.id,
            dst=backup,
            round_id=message.round_id,
            color=message.color,
            value=message.value,
            contributor_count=message.contributor_count,
            origins=message.origins,
        )
        self.schedule(
            delay,
            lambda: self._send_report(fresh, 1, state.tried | {backup}),
        )

    def _backup_parent(self, tried: Set[int]) -> Optional[int]:
        """Next untried same-colour aggregator strictly shallower than us.

        Strict shallowness guarantees reports always flow toward the
        base station, so fail-over can never create a routing cycle.
        """
        if self.color is None or self.hops is None:
            return None
        own_heard = self.heard[self.color]
        candidates = [
            agg
            for agg, hops in own_heard.items()
            if hops < self.hops and agg not in tried
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda a: (own_heard[a], a))

    def _handle_aggregate(self, message: AggregateMessage) -> None:
        if message.color is None:
            raise ProtocolError("iPDA aggregate must carry a colour")
        if message.color is not self.color:
            self.mismatched_aggregates += 1
            return
        if self.robust is not None:
            if message.frame_id in self._seen_aggregates:
                self._ack(message)  # duplicate: our ACK was lost, re-ACK
                return
            self._seen_aggregates.add(message.frame_id)
            self._ack(message)
            merged = self._merged_origins[message.color]
            if merged & set(message.origins):
                # A fail-over path re-delivered a subtree we already
                # merged (under a different frame): drop it whole.
                # Partial overlap sacrifices the non-overlapping
                # origins, but their values and piece counts vanish
                # *together*, so the loss stays visible to the base
                # station's coverage accounting.
                return
            merged.update(message.origins)
        self.child_sum[message.color] += message.value
        if self.robust is not None:
            self.child_pieces[message.color] += message.contributor_count
            if self._reported and self.parent is not None:
                # Late child (it retried or re-parented past our own
                # report): forward its contribution as a supplemental
                # report so the value still reaches the base station.
                self._send_report(
                    AggregateMessage(
                        src=self.id,
                        dst=self.parent,
                        round_id=self.round_id,
                        color=self.color,
                        value=message.value,
                        contributor_count=message.contributor_count,
                        origins=message.origins,
                    ),
                    1,
                    {self.parent},
                )

    # ------------------------------------------------------------------
    # Introspection used by the runner
    # ------------------------------------------------------------------
    @property
    def is_covered(self) -> bool:
        """Heard at least one aggregator of each colour."""
        return bool(self.heard[TreeColor.RED] and self.heard[TreeColor.BLUE])


class _TwoFacedNode(_IpdaNode):
    """The Section III-B adversary: announces itself on *both* trees.

    It elects red internally (so it aggregates somewhere) but also
    broadcasts a blue HELLO, hoping to become a parent on both trees
    and defeat the disjointness redundancy.  Honest neighbours hear the
    contradictory HELLOs and blacklist it.
    """

    def _decide(self) -> None:
        if self.decided:
            return
        self.decided = True
        heard_red = self.heard[TreeColor.RED]
        heard_blue = self.heard[TreeColor.BLUE]
        if not heard_red or not heard_blue:
            return
        self.color = TreeColor.RED
        self.parent = min(heard_red, key=lambda a: (heard_red[a], a))
        self.hops = heard_red[self.parent] + 1
        self.assemblers[TreeColor.RED] = SliceAssembler(self.id)
        self.assemblers[TreeColor.BLUE] = SliceAssembler(self.id)
        for color in (TreeColor.RED, TreeColor.BLUE):
            self.send(
                HelloMessage(
                    src=self.id,
                    dst=BROADCAST,
                    color=color,
                    hops=self.hops,
                    round_id=self.round_id,
                )
            )
        self._schedule_report()


class _IpdaBaseStation(_IpdaNode):
    """Root of both trees: floods the twin HELLOs, verifies the results."""

    def __init__(self, node_id: int, network: Network):
        super().__init__(node_id, network)
        self.decided = True
        self.assemblers = {
            TreeColor.RED: SliceAssembler(node_id),
            TreeColor.BLUE: SliceAssembler(node_id),
        }
        #: when the last partial result arrived — the round's latency.
        self.last_result_time = 0.0

    def start(self) -> None:
        for color in (TreeColor.RED, TreeColor.BLUE):
            self.send(
                HelloMessage(
                    src=self.id,
                    dst=BROADCAST,
                    color=color,
                    hops=0,
                    round_id=self.round_id,
                )
            )

    def _handle_hello(self, message: HelloMessage) -> None:
        return  # the root never re-parents or re-elects

    def _handle_aggregate(self, message: AggregateMessage) -> None:
        if message.color is None:
            raise ProtocolError("iPDA aggregate must carry a colour")
        if self.robust is not None:
            if message.frame_id in self._seen_aggregates:
                self._ack(message)
                return
            self._seen_aggregates.add(message.frame_id)
            self._ack(message)
            merged = self._merged_origins[message.color]
            if merged & set(message.origins):
                return  # duplicate fail-over path; see _IpdaNode
            merged.update(message.origins)
            self.child_pieces[message.color] += message.contributor_count
        self.child_sum[message.color] += message.value
        self.last_result_time = self.now

    def tree_sum(self, color: TreeColor) -> int:
        """``S_color``: assembled slices at the root plus child results."""
        return self.assemblers[color].assembled_value() + self.child_sum[color]

    def tree_pieces(self, color: TreeColor) -> int:
        """Slice pieces accounted for on one tree (robust mode only)."""
        return self.assemblers[color].piece_count + self.child_pieces[color]


class IpdaProtocol(AggregationProtocol):
    """Runner for iPDA rounds over the full radio stack."""

    name = "ipda"

    def __init__(
        self,
        config: Optional[IpdaConfig] = None,
        *,
        key_scheme_factory=PairwiseKeyScheme,
        radio_config: Optional[RadioConfig] = None,
        mac_config: Optional[MacConfig] = None,
        base_station: int = 0,
        keep_frames: bool = False,
    ):
        self.config = config if config is not None else IpdaConfig()
        self.key_scheme_factory = key_scheme_factory
        self.radio_config = radio_config
        self.mac_config = mac_config
        self.base_station = base_station
        #: retain the full frame log in the outcome's stats — the
        #: capture surface for the radio-level eavesdropping attack.
        self.keep_frames = keep_frames

    def run_round(
        self,
        topology: Topology,
        readings: Mapping[int, int],
        *,
        streams: RngStreams,
        round_id: int = 0,
        contributors: Optional[Set[int]] = None,
        polluters: Optional[Mapping[int, int]] = None,
        failures: Optional[Mapping[int, float]] = None,
        two_faced: Optional[Set[int]] = None,
        fault_plan=None,
    ) -> IpdaOutcome:
        """Run one iPDA round.

        ``failures`` maps node ids to fail-stop times (simulated
        seconds): the node goes silent at that instant — the crash
        injection used by the robustness tests.  ``fault_plan`` is the
        declarative alternative (a :class:`repro.faults.FaultPlan`):
        crashes with optional recovery plus Gilbert–Elliott burst loss,
        injected by the network's fault injector.  ``two_faced`` marks
        nodes running the both-colours HELLO attack of Section III-B.
        """
        validate_readings(topology, readings, self.base_station)
        keys = self.key_scheme_factory(topology.node_count)
        magnitude = self.config.effective_magnitude(readings.values())
        pollution = dict(polluters) if polluters else {}

        adversaries = set(two_faced) if two_faced else set()
        if self.base_station in adversaries:
            raise ProtocolError("the base station cannot be the adversary")

        def factory(node_id: int, network: Network) -> Node:
            if node_id == self.base_station:
                cls = _IpdaBaseStation
            elif node_id in adversaries:
                cls = _TwoFacedNode
            else:
                cls = _IpdaNode
            node = cls(node_id, network)
            node.config = self.config
            node.keys = keys
            node.round_id = round_id
            node.magnitude = magnitude
            node.base_station = self.base_station
            node.reading = int(readings.get(node_id, 0))
            node.contributes = node_id != self.base_station and (
                contributors is None or node_id in contributors
            )
            node.pollution_offset = int(pollution.get(node_id, 0))
            return node

        network = Network(
            topology,
            factory,
            streams=streams.spawn("ipda", round_id),
            radio_config=self.radio_config,
            mac_config=self.mac_config,
            keep_frames=self.keep_frames,
            fault_plan=fault_plan,
        )
        root = network.node(self.base_station)
        assert isinstance(root, _IpdaBaseStation)

        timing = self.config.timing
        t_slice = timing.tree_construction_window
        t_report_end = (
            t_slice
            + timing.slicing_window
            + timing.assembly_guard
            + (MAX_DEPTH_SLOTS + 2) * timing.aggregation_slot
        )
        root.start()
        for node in network.iter_nodes():
            if node.id != self.base_station:
                network.engine.schedule_at(
                    t_slice, _begin_slicing_callback(node)
                )
        if failures:
            for node_id, when in failures.items():
                network.engine.schedule_at(
                    float(when), _kill_callback(network, node_id)
                )
        network.run(until=t_report_end)
        network.run()  # drain MAC backoff and protocol-retry tails

        s_red = root.tree_sum(TreeColor.RED)
        s_blue = root.tree_sum(TreeColor.BLUE)
        checker = IntegrityChecker(self.config.threshold)

        participants = {
            node.id
            for node in network.iter_nodes()
            if isinstance(node, _IpdaNode)
            and node.id != self.base_station
            and node.participant
        }
        covered = {
            node.id
            for node in network.iter_nodes()
            if isinstance(node, _IpdaNode)
            and node.id != self.base_station
            and node.is_covered
        }
        red_aggs = sum(
            1
            for node in network.iter_nodes()
            if isinstance(node, _IpdaNode) and node.color is TreeColor.RED
        )
        blue_aggs = sum(
            1
            for node in network.iter_nodes()
            if isinstance(node, _IpdaNode) and node.color is TreeColor.BLUE
        )

        robustness = self.config.robustness
        if robustness is not None and robustness.degradation:
            slack = robustness.piece_slack
            if slack is None:
                # Random pieces stay within +-magnitude but the final
                # piece of an l-cut reaches |reading| + (l-1)*magnitude
                # <= (l - 1/2)*magnitude, so scale with l beyond 2.
                slack = magnitude * max(2, self.config.slices)
            verification = checker.verify(
                s_red,
                s_blue,
                pieces_red=root.tree_pieces(TreeColor.RED),
                pieces_blue=root.tree_pieces(TreeColor.BLUE),
                expected_pieces=len(participants) * self.config.slices,
                policy=DegradationPolicy(
                    piece_slack=slack,
                    max_missing_fraction=robustness.max_missing_fraction,
                ),
            )
        else:
            verification = checker.verify(s_red, s_blue)
        reported = verification.report_value
        retries_used = sum(
            node.retries_used
            for node in network.iter_nodes()
            if isinstance(node, _IpdaNode)
        )
        reparent_count = sum(
            node.reparent_count
            for node in network.iter_nodes()
            if isinstance(node, _IpdaNode)
        )
        return IpdaOutcome(
            protocol=self.name,
            round_id=round_id,
            reported=reported,
            true_total=sum(int(v) for v in readings.values()),
            participant_total=sum(int(readings[i]) for i in participants),
            participants=participants,
            bytes_sent=network.trace.total_bytes_sent,
            frames_sent=network.trace.total_frames_sent,
            s_red=s_red,
            s_blue=s_blue,
            verification=verification,
            covered=covered,
            stats={
                "sensor_count": topology.node_count - 1,
                "red_aggregators": red_aggs,
                "blue_aggregators": blue_aggs,
                "adversary_blacklisted_by": sum(
                    1
                    for node in network.iter_nodes()
                    if isinstance(node, _IpdaNode) and node.blacklist
                ),
                "slices": self.config.slices,
                "magnitude": magnitude,
                "retries_used": retries_used,
                "reparent_count": reparent_count,
                "loss_rate": network.trace.loss_rate(),
                "sent_bytes_by_node": dict(network.trace.sent_bytes_by_node),
                "latency": root.last_result_time,
                "trace": network.trace.summary(),
                "frames": network.trace.frames if self.keep_frames else None,
            },
        )


def _begin_slicing_callback(node: Node):
    def fire() -> None:
        if isinstance(node, _IpdaNode):
            node.begin_slicing()

    return fire


def _kill_callback(network: Network, node_id: int):
    def fire() -> None:
        network.kill_node(node_id)

    return fire
