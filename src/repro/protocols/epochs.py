"""Epoched iPDA: one tree construction, many query rounds.

The single-round runner re-floods HELLOs per query; real deployments
(and TAG's epoch design) amortise Phase I across many queries.
:class:`EpochedIpdaSession` keeps one :class:`~repro.sim.network.Network`
alive, runs Phase I once, then serves an arbitrary sequence of query
epochs — each a fresh Phase II (slicing with fresh randomness) and
Phase III (convergecast) on the standing trees.

Per-epoch cost therefore drops from ``2l + 1`` to ``2l`` messages per
node (the HELLO is amortised), which :func:`amortized_messages_per_node`
captures and the benchmarks verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set

from ..core.config import IpdaConfig
from ..core.integrity import (
    DegradationPolicy,
    IntegrityChecker,
    VerificationResult,
)
from ..core.slicing import SliceAssembler
from ..crypto.keys import PairwiseKeyScheme
from ..errors import AnalysisError, ProtocolError
from ..net.topology import Topology
from ..sim.mac import MacConfig
from ..sim.messages import TreeColor
from ..sim.network import Network
from ..sim.node import Node
from ..sim.radio import RadioConfig
from ..sim.rng import RngStreams
from .ipda import MAX_DEPTH_SLOTS, _IpdaBaseStation, _IpdaNode

__all__ = [
    "EpochOutcome",
    "EpochedIpdaSession",
    "RadioAggregationService",
    "amortized_messages_per_node",
]


@dataclass
class EpochOutcome:
    """Result of one query epoch on the standing trees."""

    epoch: int
    s_red: int
    s_blue: int
    verification: VerificationResult
    participants: Set[int] = field(default_factory=set)
    bytes_this_epoch: int = 0
    #: per-epoch trace summary (drops, loss rate, bytes by kind) —
    #: deltas since this epoch began, not network-lifetime totals.
    trace: Dict[str, object] = field(default_factory=dict)

    @property
    def accepted(self) -> bool:
        """Did the base station accept this epoch's result?"""
        return self.verification.accepted

    @property
    def reported(self) -> Optional[int]:
        """Accepted value, or None on rejection."""
        if not self.verification.accepted:
            return None
        return self.verification.accepted_value


class EpochedIpdaSession:
    """A standing iPDA deployment serving repeated queries.

    Usage::

        session = EpochedIpdaSession(topology, streams=RngStreams(7))
        session.construct_trees()
        outcome = session.run_epoch({i: 1 for i in range(1, n)})
    """

    def __init__(
        self,
        topology: Topology,
        config: Optional[IpdaConfig] = None,
        *,
        streams: Optional[RngStreams] = None,
        seed: int = 0,
        key_scheme_factory=PairwiseKeyScheme,
        radio_config: Optional[RadioConfig] = None,
        mac_config: Optional[MacConfig] = None,
        base_station: int = 0,
    ):
        self.topology = topology
        self.config = config if config is not None else IpdaConfig()
        self.base_station = base_station
        self._streams = streams if streams is not None else RngStreams(seed)
        self._keys = key_scheme_factory(topology.node_count)
        self._constructed = False
        self._epoch = 0
        self._construction_bytes = 0
        self.history: List[EpochOutcome] = []

        def factory(node_id: int, network: Network) -> Node:
            cls = _IpdaBaseStation if node_id == base_station else _IpdaNode
            node = cls(node_id, network)
            node.config = self.config
            node.keys = self._keys
            node.base_station = base_station
            node.contributes = False
            node.auto_report = False  # epochs drive their own reports
            return node

        self.network = Network(
            topology,
            factory,
            streams=self._streams.spawn("epoched"),
            radio_config=radio_config,
            mac_config=mac_config,
        )

    # ------------------------------------------------------------------
    # Phase I (once)
    # ------------------------------------------------------------------
    def construct_trees(self) -> None:
        """Flood the twin HELLOs and let roles settle (Phase I)."""
        if self._constructed:
            raise ProtocolError("trees already constructed")
        root = self.network.node(self.base_station)
        assert isinstance(root, _IpdaBaseStation)
        root.start()
        self.network.run(until=self.config.timing.tree_construction_window)
        self.network.run()
        self._constructed = True
        self._construction_bytes = self.network.trace.total_bytes_sent
        # Cancel the per-round reports the construction scheduled; the
        # epochs drive their own convergecasts.
        # (Reports fired during the drained run already; any residue is
        # harmless because child sums are reset per epoch.)

    @property
    def construction_bytes(self) -> int:
        """Bytes spent on the amortised Phase I."""
        return self._construction_bytes

    def covered(self) -> Set[int]:
        """Nodes that heard both colours during Phase I."""
        return {
            node.id
            for node in self.network.iter_nodes()
            if isinstance(node, _IpdaNode)
            and node.id != self.base_station
            and node.is_covered
        }

    # ------------------------------------------------------------------
    # Phases II+III (per epoch)
    # ------------------------------------------------------------------
    def run_epoch(
        self,
        readings: Mapping[int, int],
        *,
        contributors: Optional[Set[int]] = None,
        polluters: Optional[Mapping[int, int]] = None,
    ) -> EpochOutcome:
        """Serve one query on the standing trees."""
        if not self._constructed:
            raise ProtocolError("construct_trees() must run first")
        if self.base_station in readings:
            raise ProtocolError("the base station does not produce a reading")
        epoch = self._epoch
        self._epoch += 1
        # Checkpoint the shared collector: the network (and its trace)
        # outlives the epoch, so per-epoch figures must be deltas.
        self.network.trace.begin_round()
        bytes_before = self.network.trace.total_bytes_sent
        magnitude = self.config.effective_magnitude(readings.values())
        pollution = dict(polluters) if polluters else {}

        root = self.network.node(self.base_station)
        assert isinstance(root, _IpdaBaseStation)
        self._reset_epoch_state(root)
        for node in self.network.iter_nodes():
            if node.id == self.base_station or not isinstance(node, _IpdaNode):
                continue
            node.round_id = epoch
            node.reading = int(readings.get(node.id, 0))
            node.magnitude = magnitude
            node.pollution_offset = int(pollution.get(node.id, 0))
            node.contributes = node.id in readings and (
                contributors is None or node.id in contributors
            )

        timing = self.config.timing
        engine = self.network.engine
        t_slice = engine.now + 0.001
        for node in self.network.iter_nodes():
            if node.id != self.base_station and isinstance(node, _IpdaNode):
                engine.schedule_at(t_slice, _slicing_starter(node))
        t_report = t_slice + timing.slicing_window + timing.assembly_guard
        for node in self.network.iter_nodes():
            if (
                isinstance(node, _IpdaNode)
                and node.id != self.base_station
                and node.color is not None
            ):
                engine.schedule_at(
                    t_report
                    + max(MAX_DEPTH_SLOTS - (node.hops or 0), 0)
                    * timing.aggregation_slot
                    + float(node.rng.uniform(0.0, 0.8 * timing.aggregation_slot)),
                    _reporter(node),
                )
        self.network.run()

        s_red = root.tree_sum(TreeColor.RED)
        s_blue = root.tree_sum(TreeColor.BLUE)
        participants = {
            node.id
            for node in self.network.iter_nodes()
            if isinstance(node, _IpdaNode)
            and node.id != self.base_station
            and node.participant
        }
        verification = self._verify(root, s_red, s_blue, participants,
                                    magnitude)
        outcome = EpochOutcome(
            epoch=epoch,
            s_red=s_red,
            s_blue=s_blue,
            verification=verification,
            participants=participants,
            bytes_this_epoch=(
                self.network.trace.total_bytes_sent - bytes_before
            ),
            trace=self.network.trace.round_summary(),
        )
        self.history.append(outcome)
        return outcome

    def _verify(
        self,
        root: _IpdaBaseStation,
        s_red: int,
        s_blue: int,
        participants: Set[int],
        magnitude: int,
    ) -> VerificationResult:
        """Bare two-way test, or the loss-tolerant three-way verdict.

        Mirrors :meth:`IpdaProtocol.run_round`: with
        ``config.robustness`` set and degradation enabled, the piece
        counts the robust reports carried scale the acceptance
        threshold, so epochs served through standing trees get the
        same accept/degrade/reject classification as one-shot rounds.
        """
        checker = IntegrityChecker(self.config.threshold)
        robustness = self.config.robustness
        if robustness is None or not robustness.degradation:
            return checker.verify(s_red, s_blue)
        slack = robustness.piece_slack
        if slack is None:
            slack = magnitude * max(2, self.config.slices)
        return checker.verify(
            s_red,
            s_blue,
            pieces_red=root.tree_pieces(TreeColor.RED),
            pieces_blue=root.tree_pieces(TreeColor.BLUE),
            expected_pieces=len(participants) * self.config.slices,
            policy=DegradationPolicy(
                piece_slack=slack,
                max_missing_fraction=robustness.max_missing_fraction,
            ),
        )

    def _reset_epoch_state(self, root: _IpdaBaseStation) -> None:
        for node in self.network.iter_nodes():
            if not isinstance(node, _IpdaNode):
                continue
            node.participant = False
            for color in list(node.assemblers):
                node.assemblers[color] = SliceAssembler(node.id)
            node.child_sum = {TreeColor.RED: 0, TreeColor.BLUE: 0}
            # Robust-mode state is per-epoch too: piece counts feed the
            # epoch's verdict and stale un-ACKed sends must not leak
            # retransmissions into the next epoch's fresh assemblers.
            node.child_pieces = {TreeColor.RED: 0, TreeColor.BLUE: 0}
            node._pending_slices.clear()
            node._pending_reports.clear()
            # The duplicate filters guard against fail-over replays
            # *within* one epoch; carried across epochs they make every
            # fresh aggregate look like a replay of the last epoch's
            # (same origins, new values) and silently drop it.
            node._seen_slices.clear()
            node._seen_aggregates.clear()
            node._merged_origins = {TreeColor.RED: set(), TreeColor.BLUE: set()}
            node._reported = False


def _slicing_starter(node: _IpdaNode):
    def fire() -> None:
        # Fire-time guard: epochs schedule directly on the engine (the
        # node-level scheduler is unavailable before the epoch starts),
        # so a node crashed by a mid-traffic fault plan must be checked
        # here or it would keep slicing from beyond the grave.
        if node.alive:
            node.begin_slicing()

    return fire


def _reporter(node: _IpdaNode):
    def fire() -> None:
        if node.alive:
            node._report()

    return fire


class RadioAggregationService:
    """Self-healing query service on a standing radio deployment.

    The radio counterpart of
    :class:`repro.core.session.AggregationSession`: serves query epochs
    on one :class:`EpochedIpdaSession`, and when rejections persist it
    bisects the covered aggregators with restricted-participation
    epochs (all over the real radio stack) until the persistent
    polluter is isolated, then excludes it from further epochs.

    ``compromised`` maps node ids to offsets injected in every epoch
    where the node aggregates.
    """

    def __init__(
        self,
        session: EpochedIpdaSession,
        *,
        compromised: Optional[Mapping[int, int]] = None,
        hunt_after: int = 2,
    ):
        if hunt_after < 1:
            raise ProtocolError("hunt_after must be >= 1")
        self.session = session
        self.compromised: Dict[int, int] = dict(compromised or {})
        self.hunt_after = hunt_after
        self.excluded: Set[int] = set()
        self.hunts: List[Dict[str, object]] = []
        self._rejection_streak = 0

    def serve(self, readings: Mapping[int, int]) -> EpochOutcome:
        """Serve one query epoch; hunt + exclude on a rejection streak."""
        outcome = self._epoch(readings, contributors=None)
        if outcome.accepted:
            self._rejection_streak = 0
            return outcome
        self._rejection_streak += 1
        if self._rejection_streak >= self.hunt_after:
            culprit, probe_epochs = self._hunt(readings)
            self.excluded.add(culprit)
            self.hunts.append(
                {"culprit": culprit, "probe_epochs": probe_epochs}
            )
            self._rejection_streak = 0
        return outcome

    # ------------------------------------------------------------------
    def _epoch(
        self,
        readings: Mapping[int, int],
        *,
        contributors: Optional[Set[int]],
    ) -> EpochOutcome:
        eligible = set(readings) - self.excluded
        if contributors is not None:
            eligible &= contributors
        polluters = {
            node: offset
            for node, offset in self.compromised.items()
            if node in eligible
        }
        return self.session.run_epoch(
            readings,
            contributors=eligible,
            polluters=polluters or None,
        )

    def _hunt(self, readings: Mapping[int, int]):
        from ..core.integrity import PolluterLocalizer

        suspects = self.session.covered() - self.excluded
        if not suspects:
            raise ProtocolError("nothing to hunt: no covered aggregators")
        localizer = PolluterLocalizer(suspects)

        def probe_is_polluted(probe: Set[int]) -> bool:
            contributors = (set(readings) - suspects) | probe
            outcome = self._epoch(readings, contributors=contributors)
            return not outcome.accepted

        culprit = localizer.run(probe_is_polluted)
        return culprit, localizer.rounds_used


def amortized_messages_per_node(slices: int, epochs: int) -> float:
    """Per-epoch message budget with Phase I amortised over ``epochs``.

    ``(2l) + 1/epochs`` — converges to ``2l`` as the tree is reused.
    """
    if slices < 1 or epochs < 1:
        raise AnalysisError("need l >= 1 and epochs >= 1")
    return 2 * slices + 1 / epochs
