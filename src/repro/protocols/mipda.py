"""m-tree iPDA over the full radio stack (Section III-B's m > 2).

The logical m-tree pipeline lives in :mod:`repro.core.multitree`; this
module runs the same generalisation through the real simulator — HELLO
floods for m colours, m independent cuts per reading (``m*l - 1``
transmissions per aggregator), m parallel convergecasts, and
majority-vote verification at the base station, which *tolerates*
minority pollution when m ≥ 3.

With ``tree_count=2`` the behaviour coincides with
:class:`repro.protocols.ipda.IpdaProtocol` (modulo random draws), which
the tests cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..core.config import IpdaConfig
from ..core.multitree import MultiTreeVerification
from ..core.slicing import SliceAssembler, slice_value
from ..crypto.envelope import make_nonce, open_sealed, seal
from ..crypto.keys import KeyManagementScheme, PairwiseKeyScheme
from ..errors import ProtocolError
from ..net.topology import Topology
from ..sim.mac import MacConfig
from ..sim.messages import (
    BROADCAST,
    AggregateMessage,
    HelloMessage,
    Message,
    SliceMessage,
    TreeColor,
)
from ..sim.network import Network
from ..sim.node import Node
from ..sim.radio import RadioConfig
from ..sim.rng import RngStreams
from .base import validate_readings
from .ipda import MAX_DEPTH_SLOTS

__all__ = ["MipdaOutcome", "MipdaProtocol"]


@dataclass
class MipdaOutcome:
    """One m-tree round's result."""

    round_id: int
    colors: Tuple[TreeColor, ...]
    sums: List[int]
    verification: MultiTreeVerification
    participants: Set[int] = field(default_factory=set)
    covered: Set[int] = field(default_factory=set)
    true_total: int = 0
    participant_total: int = 0
    bytes_sent: int = 0
    frames_sent: int = 0
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def accepted(self) -> bool:
        """A strict majority of trees agrees."""
        return self.verification.accepted

    @property
    def reported(self) -> Optional[int]:
        """The majority value, or None without a majority."""
        if not self.verification.accepted:
            return None
        return self.verification.accepted_value

    @property
    def polluted_trees(self) -> List[TreeColor]:
        """Colours voted out of the majority."""
        return [self.colors[i] for i in self.verification.polluted_trees]


class _MipdaNode(Node):
    """A sensor running m-tree iPDA."""

    def __init__(self, node_id: int, network: Network):
        super().__init__(node_id, network)
        self.config: IpdaConfig = IpdaConfig()
        self.colors: Tuple[TreeColor, ...] = TreeColor.palette(2)
        self.keys: Optional[KeyManagementScheme] = None
        self.round_id = 0
        self.reading = 0
        self.contributes = False
        self.pollution_offset = 0
        self.magnitude = 4
        self.base_station = 0

        self.heard: Dict[TreeColor, Dict[int, int]] = {}
        self.color: Optional[TreeColor] = None
        self.parent: Optional[int] = None
        self.hops: Optional[int] = None
        self.decided = False
        self._decision_pending = False
        self.participant = False
        self.assemblers: Dict[TreeColor, SliceAssembler] = {}
        self.child_sum: Dict[TreeColor, int] = {}
        self._slice_seq = 0

    def configure(self, colors: Tuple[TreeColor, ...]) -> None:
        """Install the colour palette before the round starts."""
        self.colors = colors
        self.heard = {color: {} for color in colors}
        self.child_sum = {color: 0 for color in colors}

    # ------------------------------------------------------------------
    def on_receive(self, message: Message) -> None:
        if isinstance(message, HelloMessage):
            self._handle_hello(message)
        elif isinstance(message, SliceMessage):
            self._handle_slice(message)
        elif isinstance(message, AggregateMessage):
            self._handle_aggregate(message)

    # -- Phase I ---------------------------------------------------------
    def _handle_hello(self, message: HelloMessage) -> None:
        if message.color is None or message.color not in self.heard:
            return
        table = self.heard[message.color]
        if message.src not in table or message.hops < table[message.src]:
            table[message.src] = message.hops
        if self.decided or self._decision_pending:
            return
        if all(self.heard[color] for color in self.colors):
            self._decision_pending = True
            self.schedule(
                self.config.timing.role_decision_delay, self._decide
            )

    def _decide(self) -> None:
        if self.decided:
            return
        self.decided = True
        index = int(self.rng.integers(0, len(self.colors)))
        self.color = self.colors[index]
        own_heard = self.heard[self.color]
        self.parent = min(own_heard, key=lambda a: (own_heard[a], a))
        self.hops = own_heard[self.parent] + 1
        self.assemblers[self.color] = SliceAssembler(self.id)
        self.send(
            HelloMessage(
                src=self.id,
                dst=BROADCAST,
                color=self.color,
                hops=self.hops,
                round_id=self.round_id,
            )
        )
        self._schedule_report()

    # -- Phase II ----------------------------------------------------------
    def begin_slicing(self) -> None:
        """Cut the reading m ways and scatter the pieces."""
        if not self.contributes:
            return
        assert self.keys is not None
        candidate_lists: Dict[TreeColor, List[int]] = {}
        for color in self.colors:
            options = [
                aggregator
                for aggregator in self.heard[color]
                if aggregator != self.id
                and self.keys.can_communicate(self.id, aggregator)
            ]
            needed = (
                self.config.slices - 1
                if color is self.color
                else self.config.slices
            )
            if len(options) < needed:
                return  # factor (b): sit out
            candidate_lists[color] = sorted(options)
        self.participant = True
        window = 0.9 * self.config.timing.slicing_window
        for color in self.colors:
            cut = slice_value(
                self.reading,
                self.config.slices,
                self.rng,
                magnitude=self.magnitude,
            )
            if color is self.color:
                self.assemblers[color].keep(cut[0])
                pieces = cut[1:]
            else:
                pieces = cut
            options = candidate_lists[color]
            picked = self.rng.choice(
                len(options), size=len(pieces), replace=False
            )
            for piece, option_index in zip(pieces, sorted(picked)):
                target = options[int(option_index)]
                delay = float(self.rng.uniform(0.0, window))
                self.schedule(
                    delay, self._slice_sender(target, piece, color)
                )

    def _slice_sender(self, target: int, piece: int, color: TreeColor):
        def fire() -> None:
            assert self.keys is not None
            self._slice_seq += 1
            seq = self._slice_seq
            nonce = make_nonce(self.id, target, self.round_id, seq)
            key = self.keys.link_key(self.id, target)
            self.send(
                SliceMessage(
                    src=self.id,
                    dst=target,
                    round_id=self.round_id,
                    color=color,
                    seq=seq,
                    ciphertext=seal(piece, key, nonce),
                )
            )

        return fire

    def _handle_slice(self, message: SliceMessage) -> None:
        if message.color is None:
            raise ProtocolError("slice without a colour tag")
        assembler = self.assemblers.get(message.color)
        if assembler is None:
            return
        assert self.keys is not None
        key = self.keys.link_key(message.src, self.id)
        nonce = make_nonce(message.src, self.id, message.round_id, message.seq)
        assembler.receive(
            message.src, open_sealed(message.ciphertext, key, nonce)
        )

    # -- Phase III -----------------------------------------------------------
    def _schedule_report(self) -> None:
        assert self.hops is not None
        timing = self.config.timing
        start = (
            timing.tree_construction_window
            + timing.slicing_window
            + timing.assembly_guard
        )
        when = (
            start
            + max(MAX_DEPTH_SLOTS - self.hops, 0) * timing.aggregation_slot
            + float(self.rng.uniform(0.0, 0.8 * timing.aggregation_slot))
        )
        self.engine.schedule_at(max(when, self.now), self._guarded(self._report))

    def _report(self) -> None:
        if self.color is None or self.parent is None:
            return
        value = (
            self.assemblers[self.color].assembled_value()
            + self.child_sum[self.color]
            + self.pollution_offset
        )
        self.send(
            AggregateMessage(
                src=self.id,
                dst=self.parent,
                round_id=self.round_id,
                color=self.color,
                value=value,
            )
        )

    def _handle_aggregate(self, message: AggregateMessage) -> None:
        if message.color is not self.color:
            return
        self.child_sum[message.color] += message.value

    @property
    def is_covered(self) -> bool:
        """Heard at least one aggregator of every colour."""
        return all(self.heard[color] for color in self.colors)


class _MipdaBaseStation(_MipdaNode):
    """Root of all m trees."""

    def configure(self, colors: Tuple[TreeColor, ...]) -> None:
        super().configure(colors)
        self.decided = True
        self.assemblers = {
            color: SliceAssembler(self.id) for color in colors
        }

    def start(self) -> None:
        """Flood one HELLO per colour."""
        for color in self.colors:
            self.send(
                HelloMessage(
                    src=self.id,
                    dst=BROADCAST,
                    color=color,
                    hops=0,
                    round_id=self.round_id,
                )
            )

    def _handle_hello(self, message: HelloMessage) -> None:
        return

    def _handle_aggregate(self, message: AggregateMessage) -> None:
        if message.color is None or message.color not in self.child_sum:
            raise ProtocolError("m-iPDA aggregate with unknown colour")
        self.child_sum[message.color] += message.value

    def tree_sum(self, color: TreeColor) -> int:
        """``S_color`` at the root."""
        return self.assemblers[color].assembled_value() + self.child_sum[color]


class MipdaProtocol:
    """Runner for m-tree iPDA rounds over the full radio stack."""

    name = "mipda"

    def __init__(
        self,
        tree_count: int = 3,
        config: Optional[IpdaConfig] = None,
        *,
        key_scheme_factory=PairwiseKeyScheme,
        radio_config: Optional[RadioConfig] = None,
        mac_config: Optional[MacConfig] = None,
        base_station: int = 0,
    ):
        self.colors = TreeColor.palette(tree_count)
        self.tree_count = tree_count
        self.config = config if config is not None else IpdaConfig()
        self.key_scheme_factory = key_scheme_factory
        self.radio_config = radio_config
        self.mac_config = mac_config
        self.base_station = base_station

    def run_round(
        self,
        topology: Topology,
        readings: Mapping[int, int],
        *,
        streams: RngStreams,
        round_id: int = 0,
        contributors: Optional[Set[int]] = None,
        polluters: Optional[Mapping[int, int]] = None,
    ) -> MipdaOutcome:
        """Run one m-tree round and majority-verify the sums."""
        validate_readings(topology, readings, self.base_station)
        keys = self.key_scheme_factory(topology.node_count)
        magnitude = self.config.effective_magnitude(readings.values())
        pollution = dict(polluters) if polluters else {}

        def factory(node_id: int, network: Network) -> Node:
            cls = (
                _MipdaBaseStation
                if node_id == self.base_station
                else _MipdaNode
            )
            node = cls(node_id, network)
            node.config = self.config
            node.keys = keys
            node.round_id = round_id
            node.magnitude = magnitude
            node.base_station = self.base_station
            node.configure(self.colors)
            node.reading = int(readings.get(node_id, 0))
            node.contributes = node_id != self.base_station and (
                contributors is None or node_id in contributors
            )
            node.pollution_offset = int(pollution.get(node_id, 0))
            return node

        network = Network(
            topology,
            factory,
            streams=streams.spawn("mipda", self.tree_count, round_id),
            radio_config=self.radio_config,
            mac_config=self.mac_config,
        )
        root = network.node(self.base_station)
        assert isinstance(root, _MipdaBaseStation)
        timing = self.config.timing
        t_slice = timing.tree_construction_window
        horizon = (
            t_slice
            + timing.slicing_window
            + timing.assembly_guard
            + (MAX_DEPTH_SLOTS + 2) * timing.aggregation_slot
        )
        root.start()
        for node in network.iter_nodes():
            if node.id != self.base_station and isinstance(node, _MipdaNode):
                network.engine.schedule_at(t_slice, _starter(node))
        network.run(until=horizon)
        network.run()

        sums = [root.tree_sum(color) for color in self.colors]
        verification = MultiTreeVerification(
            sums=sums, threshold=self.config.threshold
        )
        participants = {
            node.id
            for node in network.iter_nodes()
            if isinstance(node, _MipdaNode)
            and node.id != self.base_station
            and node.participant
        }
        covered = {
            node.id
            for node in network.iter_nodes()
            if isinstance(node, _MipdaNode)
            and node.id != self.base_station
            and node.is_covered
        }
        return MipdaOutcome(
            round_id=round_id,
            colors=self.colors,
            sums=sums,
            verification=verification,
            participants=participants,
            covered=covered,
            true_total=sum(int(v) for v in readings.values()),
            participant_total=sum(int(readings[i]) for i in participants),
            bytes_sent=network.trace.total_bytes_sent,
            frames_sent=network.trace.total_frames_sent,
            stats={
                "sensor_count": topology.node_count - 1,
                "aggregators_by_color": {
                    color.value: sum(
                        1
                        for node in network.iter_nodes()
                        if isinstance(node, _MipdaNode)
                        and node.color is color
                    )
                    for color in self.colors
                },
                "loss_rate": network.trace.loss_rate(),
                "trace": network.trace.summary(),
            },
        )


def _starter(node: _MipdaNode):
    def fire() -> None:
        node.begin_slicing()

    return fire
