"""Deterministic random-number streams for the simulator.

Every stochastic component of the library (deployment, role election,
slicing, MAC backoff, attacks, workloads) draws from a *named* stream
derived from a single root seed.  Two runs with the same root seed and
the same sequence of draws per stream produce byte-identical results,
regardless of the order in which *different* components interleave
their draws.

Usage::

    streams = RngStreams(seed=42)
    deploy_rng = streams.get("deployment")
    mac_rng = streams.get("mac", node_id=17)
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple

import numpy as np

__all__ = ["RngStreams", "derive_seed"]

_SEED_BYTES = 8


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a child seed from ``root_seed`` and a tuple of labels.

    The derivation hashes the root seed together with the repr of each
    label, so any hashable/reprable identifiers (strings, ints, tuples)
    can name a stream.  The result is a 64-bit unsigned integer suitable
    for :class:`numpy.random.Generator` seeding.
    """
    hasher = hashlib.blake2b(digest_size=_SEED_BYTES)
    hasher.update(str(int(root_seed)).encode("utf-8"))
    for label in labels:
        hasher.update(b"\x1f")
        hasher.update(repr(label).encode("utf-8"))
    return int.from_bytes(hasher.digest(), "big")


class RngStreams:
    """A factory of independent, reproducible random generators.

    Parameters
    ----------
    seed:
        Root seed for the whole simulation run.
    """

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._cache: Dict[Tuple[object, ...], np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was constructed with."""
        return self._seed

    def get(self, name: str, *qualifiers: object) -> np.random.Generator:
        """Return the generator for stream ``name`` (+ optional qualifiers).

        Repeated calls with the same labels return the *same* generator
        object, so sequential draws continue the stream rather than
        restarting it.
        """
        key = (name, *qualifiers)
        generator = self._cache.get(key)
        if generator is None:
            generator = np.random.default_rng(derive_seed(self._seed, *key))
            self._cache[key] = generator
        return generator

    def spawn(self, *labels: object) -> "RngStreams":
        """Return a new factory whose root seed is derived from this one.

        Useful to give each repetition of an experiment its own
        independent universe of streams.
        """
        return RngStreams(derive_seed(self._seed, "spawn", *labels))

    def __repr__(self) -> str:
        return f"RngStreams(seed={self._seed})"
