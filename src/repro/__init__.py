"""iPDA: integrity-protecting private data aggregation for WSNs.

A full reproduction of He et al., MILCOM 2008: the iPDA protocol
(slicing-based privacy + disjoint-tree integrity), the TAG baseline it
is evaluated against, the discrete-event wireless simulator they run
on, the attack models, and the closed-form analysis of Section IV-A.

Quickstart::

    from repro import IpdaProtocol, RngStreams, random_deployment

    topology = random_deployment(400, seed=7)
    readings = {i: 1 for i in range(1, topology.node_count)}  # COUNT
    outcome = IpdaProtocol().run_round(
        topology, readings, streams=RngStreams(7)
    )
    print(outcome.s_red, outcome.s_blue, outcome.accepted)
"""

from .core import (
    DegradationPolicy,
    DisjointTrees,
    IntegrityChecker,
    IpdaConfig,
    PolluterLocalizer,
    RobustnessConfig,
    RoleMode,
    TimingConfig,
    VerificationResult,
    aggregate_statistic,
    build_disjoint_trees,
    run_lossless_round,
)
from .crypto import (
    GlobalKeyScheme,
    PairwiseKeyScheme,
    RandomPredistributionScheme,
)
from .errors import (
    ConfigurationError,
    CryptoError,
    IntegrityError,
    ProtocolError,
    ReproError,
    SimulationError,
    TopologyError,
)
from .faults import (
    CrashEvent,
    FaultInjector,
    FaultPlan,
    GilbertElliottChannel,
    GilbertElliottParams,
)
from .net import (
    Topology,
    grid_deployment,
    random_deployment,
    regular_topology,
)
from .protocols import (
    IpdaOutcome,
    IpdaProtocol,
    KipdaMaxProtocol,
    PdaProtocol,
    RoundOutcome,
    TagProtocol,
    statistic_by_name,
)
from .sim import Network, RadioConfig, RngStreams, TreeColor

__version__ = "1.8.0"

__all__ = [
    "__version__",
    # core
    "IpdaConfig",
    "RobustnessConfig",
    "RoleMode",
    "TimingConfig",
    "DegradationPolicy",
    "DisjointTrees",
    "build_disjoint_trees",
    "run_lossless_round",
    "aggregate_statistic",
    "IntegrityChecker",
    "PolluterLocalizer",
    "VerificationResult",
    # protocols
    "IpdaProtocol",
    "IpdaOutcome",
    "TagProtocol",
    "PdaProtocol",
    "KipdaMaxProtocol",
    "RoundOutcome",
    "statistic_by_name",
    # topology & sim
    "Topology",
    "random_deployment",
    "grid_deployment",
    "regular_topology",
    "Network",
    "RadioConfig",
    "RngStreams",
    "TreeColor",
    # faults
    "FaultPlan",
    "CrashEvent",
    "GilbertElliottParams",
    "GilbertElliottChannel",
    "FaultInjector",
    # crypto
    "PairwiseKeyScheme",
    "GlobalKeyScheme",
    "RandomPredistributionScheme",
    # errors
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "SimulationError",
    "ProtocolError",
    "CryptoError",
    "IntegrityError",
]
