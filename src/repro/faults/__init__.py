"""Fault injection: declarative plans, burst-loss channels, injection.

The paper evaluates iPDA under ns-2's lossy MAC; this package recreates
— and extends — that regime for the in-repo simulator:

* :class:`FaultPlan` — declarative fail-stop crashes (with optional
  recovery/churn) plus Gilbert–Elliott burst loss, per run;
* :class:`GilbertElliottChannel` — the two-state per-link loss process
  generalising ``RadioConfig.loss_probability``;
* :class:`FaultInjector` — arms a plan onto a live network, recording
  every injected fault in the trace.

Pass a plan to ``Network(fault_plan=...)`` or to the protocol runners'
``fault_plan=`` keyword; see ``docs/simulator.md`` for semantics.
"""

from .channel import GilbertElliottChannel, LinkState
from .injector import FaultInjector
from .plan import CrashEvent, FaultPlan, GilbertElliottParams

__all__ = [
    "CrashEvent",
    "FaultPlan",
    "GilbertElliottParams",
    "GilbertElliottChannel",
    "LinkState",
    "FaultInjector",
]
