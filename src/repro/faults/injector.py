"""Arming a :class:`FaultPlan` onto a live network.

The injector is the single point where declarative fault plans meet the
simulator: it schedules every crash and recovery on the event engine
(via :meth:`Network.kill_node` / :meth:`Network.revive_node`, which
silence the MAC and record the fault in the trace) and installs the
Gilbert–Elliott channel as the radio's ``loss_model``.  Protocols never
see the injector — they observe faults only through their consequences
on the air, exactly as deployed code would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .channel import GilbertElliottChannel
from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.network import Network

__all__ = ["FaultInjector"]


class FaultInjector:
    """Wires one :class:`FaultPlan` into one :class:`Network`.

    ``time_offset`` shifts every scheduled crash/recovery: plans are
    written in run-relative seconds, so arming one against an already
    running network (the long-running service does this between query
    epochs) passes ``time_offset=engine.now`` to keep the plan's
    timeline anchored at the arming instant instead of the distant
    past.  The burst-loss channel is always anchored at arm time.
    """

    def __init__(
        self,
        plan: FaultPlan,
        network: "Network",
        *,
        time_offset: float = 0.0,
    ):
        self.plan = plan
        self.network = network
        self.time_offset = float(time_offset)
        self.channel: GilbertElliottChannel | None = None
        self._armed = False

    def arm(self) -> None:
        """Schedule the plan's events; idempotent per injector."""
        if self._armed:
            return
        self._armed = True
        engine = self.network.engine
        node_count = self.network.topology.node_count
        offset = self.time_offset
        for crash in self.plan.crashes:
            if crash.node >= node_count:
                continue  # plan written for a larger deployment
            engine.schedule_at(
                crash.at + offset, self._killer(crash.node), priority=-2
            )
            if crash.recover_at is not None:
                engine.schedule_at(
                    crash.recover_at + offset,
                    self._reviver(crash.node),
                    priority=-2,
                )
        if self.plan.has_burst_loss:
            self.channel = GilbertElliottChannel(
                self.plan.burst_loss,
                overrides=self.plan.link_params(),
                seed=self.plan.seed,
            )
            # Anchor the chains at the arming instant: an injector
            # armed mid-run must not let the first frame's dwell span
            # the whole pre-arm interval (networks arm at t=0, where
            # this is a no-op).
            self.channel.arm(engine.now)
            self.network.radio.loss_model = self.channel
            self.network.trace.record_fault(engine.now, "burst-loss-model")

    def _killer(self, node_id: int):
        def fire() -> None:
            self.network.kill_node(node_id)

        return fire

    def _reviver(self, node_id: int):
        def fire() -> None:
            self.network.revive_node(node_id)

        return fire

    @property
    def injected_crashes(self) -> int:
        """Crashes recorded in the trace so far."""
        return sum(
            1
            for event in self.network.trace.fault_events
            if event.kind == "crash"
        )
