"""Gilbert–Elliott burst-loss channels over the shared medium.

The classic two-state loss model (Gilbert 1960, Elliott 1963): each
directed link is independently in a *good* or *bad* state; frames are
lost with a state-dependent probability.  We run the state as a
continuous-time Markov chain and advance it lazily — only when a frame
actually crosses the link — using the closed-form transient solution,
so sparse traffic costs nothing and results do not depend on a polling
step size.

Determinism: every link draws from its own generator derived from
``(seed, "gilbert", src, dst)``, so the loss pattern on one link never
depends on traffic elsewhere, and identical plans replay identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..rng import derive_seed
from .plan import GilbertElliottParams

__all__ = ["GilbertElliottChannel", "LinkState"]


@dataclass
class LinkState:
    """Lazy per-link chain state: where it was when last queried."""

    in_bad: bool
    last_time: float
    rng: np.random.Generator
    params: GilbertElliottParams
    #: frames this link dropped (reported into trace summaries).
    drops: int = 0
    queries: int = 0


class GilbertElliottChannel:
    """A per-link burst-loss process, pluggable into the radio.

    Instances are callables matching the radio's ``loss_model`` hook:
    ``channel(src, dst, now) -> True`` means the frame is lost.

    Parameters
    ----------
    default:
        Parameters applied to every directed link (None: only the
        overridden links run a chain; everything else is lossless).
    overrides:
        Per-``(src, dst)`` parameter overrides.
    seed:
        Root seed for the per-link generators.
    """

    def __init__(
        self,
        default: Optional[GilbertElliottParams] = None,
        *,
        overrides: Optional[
            Mapping[Tuple[int, int], GilbertElliottParams]
        ] = None,
        seed: int = 0,
        start_time: float = 0.0,
    ):
        self.default = default
        self.overrides = dict(overrides or {})
        self.seed = int(seed)
        self.start_time = float(start_time)
        self._links: Dict[Tuple[int, int], LinkState] = {}

    def arm(self, now: float) -> None:
        """Anchor the chains at simulation time ``now``.

        A channel installed mid-run must not compute its first dwell
        over the whole pre-arm interval — that would let the chain mix
        toward steady state over time during which it did not exist,
        skewing the burst statistics of the first post-arm frames.
        Call this when the channel is attached to a live network (the
        :class:`~repro.faults.injector.FaultInjector` does); links
        instantiated afterwards start their clocks at ``now``.
        """
        self.start_time = float(now)
        for state in self._links.values():
            if state.last_time < self.start_time:
                state.last_time = self.start_time

    def params_for(self, src: int, dst: int) -> Optional[GilbertElliottParams]:
        """Effective parameters of one directed link, if any."""
        return self.overrides.get((src, dst), self.default)

    def _state(self, src: int, dst: int) -> Optional[LinkState]:
        key = (src, dst)
        state = self._links.get(key)
        if state is None:
            params = self.params_for(src, dst)
            if params is None:
                return None
            rng = np.random.default_rng(
                derive_seed(self.seed, "gilbert", src, dst)
            )
            # Start each chain at its stationary distribution so early
            # frames see the same loss regime as late ones.
            in_bad = bool(rng.random() < params.steady_state_bad)
            state = LinkState(
                in_bad=in_bad,
                last_time=self.start_time,
                rng=rng,
                params=params,
            )
            self._links[key] = state
        return state

    def __call__(self, src: int, dst: int, now: float) -> bool:
        """The radio's loss hook: advance the chain, then draw the loss."""
        state = self._state(src, dst)
        if state is None:
            return False
        params = state.params
        dt = max(now - state.last_time, 0.0)
        state.last_time = now
        p_bad = params.transition_to_bad_probability(state.in_bad, dt)
        state.in_bad = bool(state.rng.random() < p_bad)
        loss_p = params.loss_bad if state.in_bad else params.loss_good
        state.queries += 1
        lost = bool(loss_p > 0.0 and state.rng.random() < loss_p)
        if lost:
            state.drops += 1
        return lost

    # ------------------------------------------------------------------
    # Introspection (used by tests and experiment notes)
    # ------------------------------------------------------------------
    def observed_loss_rate(self) -> float:
        """Fraction of queried frames this channel dropped so far."""
        queries = sum(s.queries for s in self._links.values())
        if queries == 0:
            return 0.0
        return sum(s.drops for s in self._links.values()) / queries

    def active_links(self) -> int:
        """Links whose chain has been instantiated by traffic."""
        return len(self._links)
