"""Declarative fault plans.

A :class:`FaultPlan` names everything that will go wrong in a run
*before* the run starts: fail-stop crashes (optionally with a recovery
time — churn), and bursty per-link loss driven by a Gilbert–Elliott
two-state channel that generalises the flat Bernoulli
``RadioConfig.loss_probability`` knob.  Plans are plain data: they can
be generated, logged, compared, and replayed; the
:class:`~repro.faults.injector.FaultInjector` turns one into scheduled
events on a live :class:`~repro.sim.network.Network`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["CrashEvent", "GilbertElliottParams", "FaultPlan"]


@dataclass(frozen=True)
class CrashEvent:
    """One fail-stop crash, with an optional recovery (churn).

    ``at`` and ``recover_at`` are simulated seconds.  A crash with no
    ``recover_at`` is permanent for the run.
    """

    node: int
    at: float
    recover_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigurationError("crash node id must be >= 0")
        if self.at < 0:
            raise ConfigurationError("crash time must be >= 0")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ConfigurationError("recovery must come after the crash")

    @property
    def is_churn(self) -> bool:
        """True when the node comes back during the run."""
        return self.recover_at is not None


@dataclass(frozen=True)
class GilbertElliottParams:
    """Two-state burst-loss channel parameters.

    The channel alternates between a *good* and a *bad* state as a
    continuous-time Markov chain: it leaves good at rate
    ``bad_rate`` (per second) and leaves bad at rate ``recovery_rate``.
    While good, frames are lost independently with ``loss_good``; while
    bad, with ``loss_bad``.  ``bad_rate=0`` degenerates to the flat
    Bernoulli channel with probability ``loss_good``.
    """

    bad_rate: float = 0.05
    recovery_rate: float = 0.5
    loss_good: float = 0.0
    loss_bad: float = 0.85

    def __post_init__(self) -> None:
        if self.bad_rate < 0 or self.recovery_rate <= 0:
            raise ConfigurationError(
                "bad_rate must be >= 0 and recovery_rate > 0"
            )
        for name in ("loss_good", "loss_bad"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")

    @property
    def steady_state_bad(self) -> float:
        """Long-run fraction of time the link spends in the bad state."""
        total = self.bad_rate + self.recovery_rate
        if total == 0:
            return 0.0
        return self.bad_rate / total

    @property
    def expected_loss(self) -> float:
        """Long-run average per-frame loss probability."""
        pi_bad = self.steady_state_bad
        return (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad

    @property
    def mean_burst_seconds(self) -> float:
        """Expected sojourn of one bad (bursty) period."""
        return 1.0 / self.recovery_rate

    def transition_to_bad_probability(self, in_bad: bool, dt: float) -> float:
        """P(bad at ``t + dt``) given the state at ``t`` (closed form).

        Standard two-state CTMC transient solution: with rates
        ``lambda`` (good->bad) and ``mu`` (bad->good),
        ``P(bad | good) = pi_bad * (1 - e^{-(lambda+mu) dt})`` and
        ``P(bad | bad) = pi_bad + (1 - pi_bad) e^{-(lambda+mu) dt}``.
        """
        if dt < 0:
            raise ConfigurationError("dt must be >= 0")
        pi_bad = self.steady_state_bad
        decay = math.exp(-(self.bad_rate + self.recovery_rate) * dt)
        if in_bad:
            return pi_bad + (1.0 - pi_bad) * decay
        return pi_bad * (1.0 - decay)


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will be injected into one simulation run.

    Attributes
    ----------
    crashes:
        Fail-stop events, at most one per node.
    burst_loss:
        Channel-wide Gilbert–Elliott parameters (every directed link
        gets an independent chain), or None for no burst loss.
    link_overrides:
        Per-directed-link ``(src, dst)`` parameter overrides, applied on
        top of (or instead of) ``burst_loss``.
    seed:
        Seeds the burst channels' randomness so a plan replays exactly.
    """

    crashes: Tuple[CrashEvent, ...] = ()
    burst_loss: Optional[GilbertElliottParams] = None
    link_overrides: Tuple[Tuple[Tuple[int, int], GilbertElliottParams], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        nodes = [crash.node for crash in self.crashes]
        if len(nodes) != len(set(nodes)):
            raise ConfigurationError("at most one crash event per node")
        # Normalise mutable inputs so plans stay hashable/replayable.
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(
            self, "link_overrides", tuple(self.link_overrides)
        )

    @property
    def crashed_nodes(self) -> Tuple[int, ...]:
        """Ids with a crash event, in event order."""
        return tuple(crash.node for crash in self.crashes)

    @property
    def has_burst_loss(self) -> bool:
        """True when any link runs a Gilbert–Elliott chain."""
        return self.burst_loss is not None or bool(self.link_overrides)

    def link_params(self) -> Dict[Tuple[int, int], GilbertElliottParams]:
        """The per-link override map as a plain dict."""
        return dict(self.link_overrides)

    def crashes_before(self, when: float) -> Tuple[CrashEvent, ...]:
        """Crash events strictly before ``when`` (symmetry analysis)."""
        return tuple(c for c in self.crashes if c.at < when)

    def describe(self) -> str:
        """One-line human summary for logs and experiment notes."""
        parts = [f"{len(self.crashes)} crash(es)"]
        churn = sum(1 for c in self.crashes if c.is_churn)
        if churn:
            parts.append(f"{churn} with recovery")
        if self.burst_loss is not None:
            parts.append(
                f"burst loss p~{self.burst_loss.expected_loss:.3f}"
            )
        if self.link_overrides:
            parts.append(f"{len(self.link_overrides)} link override(s)")
        return ", ".join(parts)

    @classmethod
    def random_crashes(
        cls,
        node_ids: Iterable[int],
        fraction: float,
        *,
        rng: np.random.Generator,
        window: Tuple[float, float],
        recover_after: Optional[float] = None,
        protect: Sequence[int] = (0,),
        burst_loss: Optional[GilbertElliottParams] = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """Sample a plan crashing ``fraction`` of the nodes.

        Crash instants are uniform over ``window``; ``protect`` (the
        base station by default) is never crashed.  ``recover_after``
        schedules each crashed node's recovery that many seconds after
        its crash (churn).
        """
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("fraction must be in [0, 1]")
        start, end = window
        if end < start or start < 0:
            raise ConfigurationError("window must be 0 <= start <= end")
        eligible = sorted(set(node_ids) - set(protect))
        count = int(round(fraction * len(eligible)))
        if count == 0 or not eligible:
            return cls(burst_loss=burst_loss, seed=seed)
        picked = rng.choice(len(eligible), size=min(count, len(eligible)),
                            replace=False)
        crashes = []
        for index in sorted(int(i) for i in picked):
            at = float(rng.uniform(start, end))
            recover_at = None
            if recover_after is not None:
                recover_at = at + float(recover_after)
            crashes.append(
                CrashEvent(node=eligible[index], at=at, recover_at=recover_at)
            )
        return cls(
            crashes=tuple(crashes), burst_loss=burst_loss, seed=seed
        )
