"""The ``privacy-suite`` cell experiment: score full configurations.

One cell per ``(slices, key scheme)`` on the 200-node paper deployment
evaluates everything the metric suite measures — Monte-Carlo
disclosure with its Equation 11 cross-check, empirical mutual
information, the slice-count guarantee, coalition exposure — and folds
them into the composite privacy score.  The resulting records are the
shared currency of this package: the suite table, the
``repro-privacy/1`` document, and the :mod:`repro.tune` autotuner all
consume the same dicts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..attacks.collusion import coalition_disclosure, random_coalition
from ..attacks.eavesdropper import LinkEavesdropper
from ..core.config import IpdaConfig, RoleMode
from ..core.pipeline import run_lossless_round
from ..crypto.keys import (
    GlobalKeyScheme,
    PairwiseKeyScheme,
    RandomPredistributionScheme,
)
from ..errors import ConfigurationError
from ..experiments.common import (
    Cell,
    CellExperiment,
    ExperimentTable,
    cached_deployment,
    grouped,
    make_cell,
    mean_std,
)
from ..rng import RngStreams, derive_seed
from .metrics import (
    closed_form_crosscheck,
    empirical_mutual_information,
    slice_count_guarantee,
)
from .score import GUARANTEE_TARGET, composite_privacy_score

__all__ = [
    "EXPERIMENT",
    "PAPER_NODE_COUNT",
    "REFERENCE_PX",
    "SPEC",
    "evaluate_privacy",
    "make_key_scheme",
    "run",
]

EXPERIMENT = "privacy-suite"

#: The deployment size the paper's evaluation centres on.
PAPER_NODE_COUNT = 200

#: Reference link-compromise probability — the midpoint of Figure 5's
#: x-axis sweep (0.01 .. 0.10).
REFERENCE_PX = 0.05

#: Key schemes the suite compares by default: the paper's random key
#: predistribution assumption versus ideal pairwise keys.
DEFAULT_SCHEMES = ("eg-1000/50", "pairwise")


def make_key_scheme(label: str, node_count: int, *, seed: int = 0):
    """Instantiate a key scheme from its sweep label.

    ``"pairwise"``, ``"global"``, or ``"eg-<pool>/<ring>"`` for
    Eschenauer-Gligor random predistribution.
    """
    if label == "pairwise":
        return PairwiseKeyScheme(node_count, seed=seed)
    if label == "global":
        return GlobalKeyScheme(node_count, seed=seed)
    if label.startswith("eg-"):
        try:
            pool_text, ring_text = label[3:].split("/", 1)
            pool, ring = int(pool_text), int(ring_text)
        except ValueError:
            raise ConfigurationError(
                f"malformed key-scheme label {label!r}; "
                "expected eg-<pool>/<ring>"
            ) from None
        return RandomPredistributionScheme(
            node_count, pool_size=pool, ring_size=ring, seed=seed
        )
    raise ConfigurationError(
        f"unknown key scheme {label!r}; "
        "expected pairwise, global, or eg-<pool>/<ring>"
    )


def evaluate_privacy(
    topology,
    config: IpdaConfig,
    key_scheme,
    *,
    px: float = REFERENCE_PX,
    seed: int = 0,
    rounds: int = 3,
    mi_trials: int = 24,
    disclosure_trials: int = 60,
    collusion_size: int = 10,
    collusion_trials: int = 40,
    levels: int = 8,
    base_station: int = 0,
) -> Dict[str, object]:
    """Run the full metric suite against one configuration.

    Returns a JSON-able record: disclosure (Monte-Carlo + closed-form
    cross-check), mutual information, the slice-count guarantee,
    coalition exposure, and the composite score with its decomposition.
    All randomness derives from ``seed``.

    The structural metrics are averaged over ``rounds`` independent
    reference rounds (the slice topology a node draws varies a lot
    between rounds, so a single-round estimate carries round-level
    variance that no amount of link-sampling removes);
    ``disclosure_trials`` and ``collusion_trials`` are totals split
    across the reference rounds.
    """
    if rounds < 1:
        raise ConfigurationError("rounds must be >= 1")
    disclosure_per_round = max(1, disclosure_trials // rounds)
    collusion_per_round = max(1, collusion_trials // rounds)
    guarantee_mins: List[float] = []
    guarantee_means: List[float] = []
    guarantee_fractions: List[float] = []
    counted_in_keys = key_scheme is not None
    monte_carlo_total = 0.0
    collusion_total = 0.0
    guarantee_floor = int(GUARANTEE_TARGET)
    for index in range(rounds):
        streams = RngStreams(derive_seed(seed, "privacy-eval", index))
        reading_rng = streams.get("readings")
        readings = {
            node: int(reading_rng.integers(0, levels))
            for node in range(topology.node_count)
            if node != base_station
        }
        reference_round = run_lossless_round(
            topology,
            readings,
            config,
            rng=streams.get("round"),
            base_station=base_station,
            key_scheme=key_scheme,
            record_flows=True,
        )

        guarantee = slice_count_guarantee(
            reference_round, key_scheme=key_scheme
        )
        counted_in_keys = guarantee.counted_in_keys
        if guarantee.min_cost is not None:
            guarantee_mins.append(guarantee.min_cost)
        guarantee_means.append(guarantee.mean_cost)
        guarantee_fractions.append(
            guarantee.fraction_at_least(guarantee_floor)
        )
        attacker = LinkEavesdropper(px, rng=streams.get("attack"))
        monte_carlo_total += attacker.monte_carlo_disclosure(
            topology, reference_round, trials=disclosure_per_round
        )

        coalition_rng = streams.get("coalition")
        for _trial in range(collusion_per_round):
            coalition = random_coalition(
                topology,
                collusion_size,
                coalition_rng,
                exclude=(base_station,),
            )
            collusion_total += coalition_disclosure(
                reference_round, coalition
            ).disclosure_rate

    monte_carlo = monte_carlo_total / rounds
    collusion_rate = collusion_total / (rounds * collusion_per_round)
    guarantee_mean = sum(guarantee_means) / len(guarantee_means)

    mi = empirical_mutual_information(
        topology,
        config,
        px=px,
        trials=mi_trials,
        seed=derive_seed(seed, "privacy-eval", "mi"),
        levels=levels,
        key_scheme=key_scheme,
        base_station=base_station,
    )
    crosscheck = closed_form_crosscheck(topology, px, config.slices, mi)
    score = composite_privacy_score(
        disclosure_rate=monte_carlo,
        leakage_fraction=mi.leakage_fraction,
        breaking_cost=guarantee_mean,
        collusion_rate=collusion_rate,
    )
    return {
        "px": px,
        "rounds": rounds,
        "disclosure": {
            "monte_carlo": monte_carlo,
            "closed_form": crosscheck["closed_form"],
            "mi_implied": crosscheck["mi_implied"],
            "abs_error": abs(monte_carlo - crosscheck["closed_form"]),
            "trials": rounds * disclosure_per_round,
        },
        "mutual_information": {
            "bits": mi.bits,
            "entropy_bits": mi.entropy_bits,
            "leakage": mi.leakage_fraction,
            "trials": mi.trials,
            "samples": mi.samples,
            "levels": mi.levels,
        },
        "slice_guarantee": {
            "min": min(guarantee_mins) if guarantee_mins else None,
            "mean": guarantee_mean,
            "fraction_at_target": (
                sum(guarantee_fractions) / len(guarantee_fractions)
            ),
            "target": guarantee_floor,
            "counted_in_keys": counted_in_keys,
        },
        "collusion": {
            "size": collusion_size,
            "trials": rounds * collusion_per_round,
            "rate": collusion_rate,
        },
        "privacy": score.to_jsonable(),
    }


# ----------------------------------------------------------------------
# The cell experiment
# ----------------------------------------------------------------------
def cells(
    slice_counts: Sequence[int] = (2, 3),
    *,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    node_count: int = PAPER_NODE_COUNT,
    px: float = REFERENCE_PX,
    seed: int = 0,
    repetitions: int = 1,
    mi_trials: int = 24,
    disclosure_trials: int = 60,
    collusion_size: int = 10,
    collusion_trials: int = 40,
) -> List[Cell]:
    """One cell per ``(slices, scheme, repetition)``."""
    return [
        make_cell(
            EXPERIMENT,
            (int(slices), str(scheme)),
            rep,
            node_count=int(node_count),
            px=float(px),
            seed=int(seed),
            mi_trials=int(mi_trials),
            disclosure_trials=int(disclosure_trials),
            collusion_size=int(collusion_size),
            collusion_trials=int(collusion_trials),
        )
        for slices in slice_counts
        for scheme in schemes
        for rep in range(repetitions)
    ]


def run_cell(cell: Cell) -> Dict[str, object]:
    """Evaluate one (slices, scheme) configuration."""
    slices, scheme_label = cell.key
    seed = cell.param("seed")
    node_count = cell.param("node_count")
    # Same terrain for every configuration of a repetition, so rows
    # compare protocols rather than random fields.
    topology = cached_deployment(
        node_count, seed=derive_seed(seed, EXPERIMENT, "deploy", cell.rep)
    )
    key_scheme = make_key_scheme(
        scheme_label,
        node_count,
        seed=derive_seed(seed, EXPERIMENT, "keys", scheme_label, cell.rep),
    )
    # The evaluation seed deliberately excludes the scheme label:
    # schemes at the same slice count then share readings, compromised
    # links, and coalition draws (common random numbers), so scheme
    # rows differ only through the protocol, not sampling noise.
    record = evaluate_privacy(
        topology,
        IpdaConfig(slices=slices),
        key_scheme,
        px=cell.param("px"),
        seed=derive_seed(seed, EXPERIMENT, slices, cell.rep),
        mi_trials=cell.param("mi_trials"),
        disclosure_trials=cell.param("disclosure_trials"),
        collusion_size=cell.param("collusion_size"),
        collusion_trials=cell.param("collusion_trials"),
    )
    record["config"] = {
        "slices": int(slices),
        "scheme": scheme_label,
        "node_count": int(node_count),
    }
    return record


def reduce(
    cells: Sequence[Cell], results: Sequence[object]
) -> ExperimentTable:
    """Average repetitions into one row per (slices, scheme)."""
    table = ExperimentTable(
        name="Privacy metric suite",
        columns=[
            "slices",
            "scheme",
            "privacy_score",
            "disclosure_mc",
            "disclosure_eq11",
            "mi_leakage",
            "guarantee_min",
            "collusion_rate",
        ],
    )
    records: List[Dict[str, object]] = []
    for key, entries in grouped(cells, results).items():
        slices, scheme = key
        group = [result for _cell, result in entries]
        score_mean, _ = mean_std(
            [r["privacy"]["score"] for r in group]
        )
        mc_mean, _ = mean_std(
            [r["disclosure"]["monte_carlo"] for r in group]
        )
        eq11_mean, _ = mean_std(
            [r["disclosure"]["closed_form"] for r in group]
        )
        leak_mean, _ = mean_std(
            [r["mutual_information"]["leakage"] for r in group]
        )
        guarantee_min = min(r["slice_guarantee"]["min"] for r in group)
        collusion_mean, _ = mean_std(
            [r["collusion"]["rate"] for r in group]
        )
        table.add_row(
            slices,
            scheme,
            score_mean,
            mc_mean,
            eq11_mean,
            leak_mean,
            guarantee_min,
            collusion_mean,
        )
        records.append(group[0])
    table.meta["evaluations"] = records
    table.add_note(
        "privacy_score = weighted LPS-style decomposition "
        "(disclosure, mutual information, slice guarantee, collusion)"
    )
    table.add_note(
        "guarantee_min counts distinct link *keys* the eavesdropper "
        "must capture before any reconstruction way opens"
    )
    return table


SPEC = CellExperiment(
    EXPERIMENT, cells, run_cell, reduce,
    description="Privacy metric suite: composite score, MI leakage, and "
                "slice guarantees per (l, key scheme)",
)


def run(
    slice_counts: Sequence[int] = (2, 3),
    *,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    node_count: int = PAPER_NODE_COUNT,
    px: float = REFERENCE_PX,
    seed: int = 0,
    repetitions: int = 1,
    mi_trials: int = 24,
    disclosure_trials: int = 60,
    jobs: Optional[int] = 1,
) -> ExperimentTable:
    """Evaluate the metric suite across (slices, key scheme)."""
    from ..runner import execute

    return execute(
        SPEC,
        jobs=jobs,
        slice_counts=tuple(int(s) for s in slice_counts),
        schemes=tuple(str(s) for s in schemes),
        node_count=node_count,
        px=px,
        seed=seed,
        repetitions=repetitions,
        mi_trials=mi_trials,
        disclosure_trials=disclosure_trials,
    )
