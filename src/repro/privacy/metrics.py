"""Indistinguishability metrics over recorded slice flows.

Two complementary measurements of what a link eavesdropper learns:

* **Slice-count guarantee** — a k-anonymity-style worst-case bound per
  node: the minimum number of distinct links (or, under a key scheme,
  distinct link *keys*) the attacker must break before either of the
  paper's two reconstruction ways opens.  Under random key
  predistribution one captured ring key can open several links at
  once, so the guarantee is measured in keys, which is exactly the
  insider leak Section IV-A.3 names.
* **Empirical mutual information** — ``I(R; V)`` between the true
  readings ``R`` and the eavesdropper's view ``V`` (the reconstructed
  value, or ⊥ when reconstruction fails), estimated by the plug-in
  estimator over seeded Monte-Carlo trials with fresh readings and
  fresh compromise draws per trial.  Because reconstruction, when it
  succeeds, is exact, the normalized leakage ``I/H(R)`` coincides with
  the disclosure probability — which is what makes the estimate
  cross-checkable against the closed form of
  :func:`repro.analysis.privacy.average_disclosure_probability`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.privacy import average_disclosure_probability
from ..attacks.eavesdropper import LinkEavesdropper, compromise_links
from ..core.pipeline import LosslessRound, NodeFlows, run_lossless_round
from ..errors import AnalysisError, KeyNotFoundError
from ..net.topology import Topology
from ..rng import RngStreams, derive_seed
from ..sim.messages import TreeColor

__all__ = [
    "MutualInformationEstimate",
    "SliceGuarantee",
    "closed_form_crosscheck",
    "empirical_mutual_information",
    "node_breaking_cost",
    "slice_count_guarantee",
]


def _link(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a < b else (b, a)


def _way_costs(
    node_id: int, flows: NodeFlows, key_scheme=None
) -> List[int]:
    """Breaking cost of every reconstruction way open against a node.

    A way's cost is the number of distinct links it requires — or the
    number of distinct link keys when ``key_scheme`` is given, since
    one captured shared key opens every link derived from it.
    """
    ways: List[frozenset] = []
    # Way 1: all l pieces of a fully transmitted cut.
    for color in (TreeColor.RED, TreeColor.BLUE):
        outgoing = flows.outgoing.get(color, [])
        if outgoing and flows.cut_is_complete(color):
            ways.append(
                frozenset(_link(node_id, t) for t, _piece in outgoing)
            )
    # Way 2: the self-including cut's l-1 pieces + every incoming slice.
    if flows.kept_cut_color() is not None:
        own = flows.outgoing.get(flows.kept_cut_color(), [])
        links = {_link(node_id, t) for t, _piece in own}
        links.update(_link(s, node_id) for s, _piece in flows.incoming)
        ways.append(frozenset(links))

    costs: List[int] = []
    for links in ways:
        if key_scheme is None:
            costs.append(len(links))
            continue
        keys = set()
        for a, b in links:
            try:
                keys.add(key_scheme.link_key(a, b))
            except KeyNotFoundError:
                # No shared key: the link is its own (unshared) secret.
                keys.add((a, b))
        costs.append(len(keys))
    return costs


def node_breaking_cost(
    node_id: int, flows: NodeFlows, *, key_scheme=None
) -> Optional[int]:
    """Minimum links/keys to break before ``node_id``'s reading leaks.

    None when the node exposes no reconstruction way at all (it sent
    nothing this round).
    """
    costs = _way_costs(node_id, flows, key_scheme)
    return min(costs) if costs else None


@dataclass(frozen=True)
class SliceGuarantee:
    """Worst-case link/key-breaking costs across a round's participants."""

    per_node: Dict[int, int]
    #: Whether costs were counted in distinct keys (True) or raw links.
    counted_in_keys: bool = False

    @property
    def min_cost(self) -> int:
        return min(self.per_node.values()) if self.per_node else 0

    @property
    def mean_cost(self) -> float:
        if not self.per_node:
            return 0.0
        return sum(self.per_node.values()) / len(self.per_node)

    def fraction_at_least(self, k: int) -> float:
        """Fraction of nodes whose guarantee is at least ``k``."""
        if not self.per_node:
            return 0.0
        good = sum(1 for cost in self.per_node.values() if cost >= k)
        return good / len(self.per_node)


def slice_count_guarantee(
    round_result: LosslessRound, *, key_scheme=None
) -> SliceGuarantee:
    """Per-node slice-count guarantee over one recorded round."""
    if round_result.flows is None:
        raise AnalysisError(
            "round was not run with record_flows=True; nothing to measure"
        )
    per_node: Dict[int, int] = {}
    for node_id in sorted(round_result.participants):
        flows = round_result.flows.get(node_id)
        if flows is None:
            continue
        cost = node_breaking_cost(node_id, flows, key_scheme=key_scheme)
        if cost is not None:
            per_node[node_id] = cost
    return SliceGuarantee(
        per_node=per_node, counted_in_keys=key_scheme is not None
    )


# ----------------------------------------------------------------------
# Empirical mutual information
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MutualInformationEstimate:
    """Plug-in estimate of ``I(R; V)`` between readings and the view."""

    bits: float
    entropy_bits: float
    disclosure_rate: float
    trials: int
    samples: int
    levels: int

    @property
    def leakage_fraction(self) -> float:
        """``I(R;V) / H(R)`` — 0 is perfect hiding, 1 full disclosure."""
        if self.entropy_bits <= 0.0:
            return 0.0
        return self.bits / self.entropy_bits


def _plugin_mi(joint: List[List[int]], total: int) -> Tuple[float, float]:
    """(mutual information, marginal reading entropy), both in bits."""
    if total == 0:
        return 0.0, 0.0
    row_sums = [sum(row) for row in joint]
    col_sums = [sum(row[j] for row in joint) for j in range(len(joint[0]))]
    mi = 0.0
    for i, row in enumerate(joint):
        for j, count in enumerate(row):
            if count == 0:
                continue
            p_xy = count / total
            p_x = row_sums[i] / total
            p_y = col_sums[j] / total
            mi += p_xy * math.log2(p_xy / (p_x * p_y))
    entropy = -sum(
        (s / total) * math.log2(s / total) for s in row_sums if s
    )
    # Clamp the tiny negative residue float rounding can leave.
    return max(mi, 0.0), entropy


def empirical_mutual_information(
    topology: Topology,
    config,
    *,
    px: float,
    trials: int,
    seed: int = 0,
    levels: int = 8,
    key_scheme=None,
    base_station: int = 0,
) -> MutualInformationEstimate:
    """Monte-Carlo ``I(R; V)`` between readings and the observed view.

    Each trial draws fresh uniform readings over ``levels`` values,
    runs a recorded lossless round, draws an independent link
    compromise at ``px``, and tallies the joint histogram of (true
    reading, attacker view).  The view alphabet is the reading alphabet
    plus ⊥ (reconstruction failed).
    """
    if trials < 1:
        raise AnalysisError("trials must be >= 1")
    if levels < 2:
        raise AnalysisError("levels must be >= 2 for a non-trivial alphabet")
    joint = [[0] * (levels + 1) for _ in range(levels)]
    attempted = 0
    disclosed = 0
    attacker = LinkEavesdropper(px)
    for trial in range(trials):
        streams = RngStreams(derive_seed(seed, "privacy-mi", trial))
        reading_rng = streams.get("readings")
        readings = {
            node: int(reading_rng.integers(0, levels))
            for node in range(topology.node_count)
            if node != base_station
        }
        round_result = run_lossless_round(
            topology,
            readings,
            config,
            rng=streams.get("round"),
            base_station=base_station,
            key_scheme=key_scheme,
            record_flows=True,
        )
        compromised = compromise_links(topology, px, streams.get("links"))
        report = attacker.attack(topology, round_result, links=compromised)
        for node in report.attempted:
            true_value = readings[node]
            view = report.disclosed.get(node)
            if view is None:
                column = levels
            else:
                if not 0 <= view < levels:
                    raise AnalysisError(
                        f"reconstructed value {view} outside the reading "
                        f"alphabet [0, {levels}) — flows are inconsistent"
                    )
                column = view
            joint[true_value][column] += 1
            attempted += 1
            if view is not None:
                disclosed += 1
    bits, entropy = _plugin_mi(joint, attempted)
    return MutualInformationEstimate(
        bits=bits,
        entropy_bits=entropy,
        disclosure_rate=(disclosed / attempted) if attempted else 0.0,
        trials=trials,
        samples=attempted,
        levels=levels,
    )


def closed_form_crosscheck(
    topology: Topology,
    px: float,
    slices: int,
    estimate: MutualInformationEstimate,
) -> Dict[str, float]:
    """Compare the Monte-Carlo estimate against Equation 11.

    Successful reconstruction is exact and link compromise is
    independent of the reading values, so both the measured disclosure
    rate and the normalized leakage ``I/H(R)`` estimate the same
    quantity the closed form computes.
    """
    closed = average_disclosure_probability(topology, px, slices)
    return {
        "closed_form": closed,
        "monte_carlo": estimate.disclosure_rate,
        "mi_implied": estimate.leakage_fraction,
        "abs_error": abs(estimate.disclosure_rate - closed),
    }
