"""Privacy metric suite: quantify the eavesdropper's observed view.

The paper argues indistinguishability asymptotically (Equation 11) and
the attack modules (:mod:`repro.attacks`) demonstrate it per-attack;
this package turns both into *numbers* a configuration can be scored
and searched on:

* :mod:`repro.privacy.metrics` — a slice-count k-style guarantee per
  node (how many distinct links/keys an eavesdropper must break before
  any reconstruction way opens) and an empirical mutual-information
  estimate between true readings and the observed traffic, Monte-Carlo
  over seeded trials and cross-checked against the closed-form
  disclosure probability of :mod:`repro.analysis.privacy`;
* :mod:`repro.privacy.score` — an auditable composite privacy score:
  a weighted sum of normalized sub-scores (the LPS decomposition
  pattern), each component reported alongside the total;
* :mod:`repro.privacy.evaluate` — the ``privacy-suite`` cell
  experiment evaluating full configurations on the paper deployment;
* :mod:`repro.privacy.report` — the schema'd ``repro-privacy/1``
  document (``repro report`` dispatches on it) shared with the
  :mod:`repro.tune` autotuner.
"""

from .metrics import (
    MutualInformationEstimate,
    SliceGuarantee,
    closed_form_crosscheck,
    empirical_mutual_information,
    node_breaking_cost,
    slice_count_guarantee,
)
from .score import (
    DEFAULT_WEIGHTS,
    PrivacyScore,
    ScoreComponent,
    composite_privacy_score,
)
from .evaluate import (
    REFERENCE_PX,
    evaluate_privacy,
    make_key_scheme,
    SPEC,
)
from .report import (
    PRIVACY_SCHEMA,
    build_privacy_report,
    load_privacy_report,
    render_privacy_report,
    validate_privacy_report,
    write_privacy_report,
)

__all__ = [
    "DEFAULT_WEIGHTS",
    "MutualInformationEstimate",
    "PRIVACY_SCHEMA",
    "PrivacyScore",
    "REFERENCE_PX",
    "SPEC",
    "ScoreComponent",
    "SliceGuarantee",
    "build_privacy_report",
    "closed_form_crosscheck",
    "composite_privacy_score",
    "empirical_mutual_information",
    "evaluate_privacy",
    "load_privacy_report",
    "make_key_scheme",
    "node_breaking_cost",
    "render_privacy_report",
    "slice_count_guarantee",
    "validate_privacy_report",
    "write_privacy_report",
]
