"""The ``repro-privacy/1`` document: schema'd privacy/tune reports.

One JSON schema serves both producers: the ``privacy-suite``
experiment (``kind: "suite"``) and the ``repro tune`` autotuner
(``kind: "tune"``, adding the target envelope, feasibility, the Pareto
frontier, and the winning configuration).  ``repro report`` dispatches
on the schema string, mirroring ``repro-run/1`` and ``repro-serve/1``.

Validation is strict about the auditability contract: every
evaluation's composite score must equal the weighted sum of its
decomposition components, so a report can never present a score its
own breakdown does not explain.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError

__all__ = [
    "PRIVACY_SCHEMA",
    "build_privacy_report",
    "load_privacy_report",
    "render_privacy_report",
    "validate_privacy_report",
    "write_privacy_report",
]

#: Report schema identifier; bump when the JSON layout changes.
PRIVACY_SCHEMA = "repro-privacy/1"

_KINDS = ("suite", "tune")

#: |score - sum(weighted components)| tolerated by validation.
_AUDIT_TOLERANCE = 1e-9


def build_privacy_report(
    evaluations: Sequence[Dict[str, object]],
    *,
    kind: str,
    targets: Optional[Dict[str, object]] = None,
    frontier: Optional[Sequence[str]] = None,
    winner: Optional[str] = None,
    baseline: Optional[str] = None,
    dominating: Optional[Sequence[str]] = None,
    cache: Optional[Dict[str, int]] = None,
    metrics: Optional[Dict[str, object]] = None,
    argv: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Assemble a ``repro-privacy/1`` document and validate it."""
    report: Dict[str, object] = {
        "schema": PRIVACY_SCHEMA,
        "kind": kind,
        "created_utc": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "evaluations": list(evaluations),
    }
    if argv is not None:
        report["argv"] = list(argv)
    if targets is not None:
        report["targets"] = dict(targets)
    if frontier is not None:
        report["frontier"] = list(frontier)
    if winner is not None:
        report["winner"] = winner
    if baseline is not None:
        report["baseline"] = baseline
    if dominating is not None:
        report["dominating"] = list(dominating)
    if cache is not None:
        report["cache"] = dict(cache)
    if metrics is not None:
        report["metrics"] = metrics
    validate_privacy_report(report)
    return report


def _fail(problem: str) -> None:
    raise ConfigurationError(f"invalid {PRIVACY_SCHEMA} report: {problem}")


def _check_evaluation(index: int, entry: object) -> str:
    if not isinstance(entry, dict):
        _fail(f"evaluations[{index}] is not an object")
    config = entry.get("config")
    if not isinstance(config, dict) or "slices" not in config:
        _fail(f"evaluations[{index}] lacks a config with slices")
    label = config.get("label") or "/".join(
        str(config[k]) for k in sorted(config)
    )
    privacy = entry.get("privacy")
    if not isinstance(privacy, dict):
        _fail(f"evaluations[{index}] lacks a privacy block")
    score = privacy.get("score")
    if not isinstance(score, (int, float)) or not 0.0 <= score <= 1.0:
        _fail(f"evaluations[{index}] privacy score {score!r} not in [0, 1]")
    components = privacy.get("components")
    if not isinstance(components, list) or not components:
        _fail(f"evaluations[{index}] privacy decomposition missing")
    total = 0.0
    for part in components:
        if not isinstance(part, dict):
            _fail(f"evaluations[{index}] has a non-object component")
        for field in ("name", "score", "weight", "weighted"):
            if field not in part:
                _fail(
                    f"evaluations[{index}] component lacks {field!r}"
                )
        total += float(part["weighted"])
    if abs(total - float(score)) > _AUDIT_TOLERANCE:
        _fail(
            f"evaluations[{index}] score {score} is not the sum of its "
            f"weighted components ({total}) — decomposition not auditable"
        )
    return str(label)


def validate_privacy_report(report: object) -> Dict[str, object]:
    """Validate schema, kinds, and the auditability contract."""
    if not isinstance(report, dict):
        _fail("not a JSON object")
    if report.get("schema") != PRIVACY_SCHEMA:
        _fail(f"schema is {report.get('schema')!r}")
    kind = report.get("kind")
    if kind not in _KINDS:
        _fail(f"kind {kind!r} not in {_KINDS}")
    evaluations = report.get("evaluations")
    if not isinstance(evaluations, list) or not evaluations:
        _fail("evaluations must be a non-empty list")
    labels = [
        _check_evaluation(index, entry)
        for index, entry in enumerate(evaluations)
    ]
    if kind == "tune":
        targets = report.get("targets")
        if not isinstance(targets, dict):
            _fail("tune reports must carry a targets envelope")
        for field in ("winner", "baseline"):
            value = report.get(field)
            if value is not None and value not in labels:
                _fail(
                    f"{field} {value!r} names no evaluated configuration"
                )
        for field in ("frontier", "dominating"):
            value = report.get(field, [])
            if not isinstance(value, list):
                _fail(f"{field} must be a list")
            for label in value:
                if label not in labels:
                    _fail(
                        f"{field} entry {label!r} names no evaluated "
                        "configuration"
                    )
    return report


def load_privacy_report(path: str) -> Dict[str, object]:
    """Load and validate a ``repro-privacy/1`` file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read privacy report {path!r}: {exc}"
        ) from exc
    except ValueError as exc:
        raise ConfigurationError(
            f"privacy report {path!r} is not valid JSON: {exc}"
        ) from exc
    return validate_privacy_report(report)


def write_privacy_report(report: Dict[str, object], path: str) -> str:
    """Validate and write the document (creating parent directories)."""
    validate_privacy_report(report)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _evaluation_label(entry: Dict[str, object]) -> str:
    config = entry["config"]
    label = config.get("label")
    if label:
        return str(label)
    return "/".join(str(config[k]) for k in sorted(config))


def _format_targets(targets: Dict[str, object]) -> str:
    parts: List[str] = []
    if targets.get("min_privacy") is not None:
        parts.append(f"privacy >= {targets['min_privacy']:g}")
    if targets.get("max_overhead") is not None:
        parts.append(f"overhead <= {targets['max_overhead']:g}x")
    if targets.get("max_accuracy_loss") is not None:
        parts.append(
            f"accuracy loss <= {targets['max_accuracy_loss']:g}"
        )
    return ", ".join(parts) if parts else "(unconstrained)"


def render_privacy_report(report: Dict[str, object]) -> str:
    """Human-readable text view of a validated document."""
    validate_privacy_report(report)
    lines: List[str] = []
    kind = report["kind"]
    title = (
        "privacy metric suite" if kind == "suite" else "privacy autotuner"
    )
    lines.append(f"{PRIVACY_SCHEMA} — {title} ({report['created_utc']})")
    if report.get("argv"):
        lines.append("argv: " + " ".join(report["argv"]))
    if kind == "tune":
        lines.append(
            "targets: " + _format_targets(report.get("targets", {}))
        )
    frontier = set(report.get("frontier", []))
    dominating = set(report.get("dominating", []))
    winner = report.get("winner")
    baseline = report.get("baseline")

    header = (
        f"{'configuration':<34} {'privacy':>8} {'overhead':>9} "
        f"{'accuracy':>9} {'disclose':>9}  flags"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for entry in report["evaluations"]:
        label = _evaluation_label(entry)
        privacy = entry["privacy"]["score"]
        overhead = entry.get("overhead", {}).get("ratio")
        accuracy = entry.get("accuracy", {}).get("mean")
        disclosure = entry["disclosure"]["monte_carlo"]
        flags = []
        if label == baseline:
            flags.append("baseline")
        if label in frontier:
            flags.append("frontier")
        if label in dominating:
            flags.append("dominates")
        if label == winner:
            flags.append("WINNER")
        lines.append(
            f"{label:<34} {privacy:>8.4f} "
            f"{('%9.3f' % overhead) if overhead is not None else '       --'} "
            f"{('%9.4f' % accuracy) if accuracy is not None else '       --'} "
            f"{disclosure:>9.5f}  {' '.join(flags)}"
        )

    if kind == "tune":
        if winner is None:
            lines.append(
                "no configuration meets the target envelope"
            )
        else:
            for entry in report["evaluations"]:
                if _evaluation_label(entry) != winner:
                    continue
                lines.append(f"winner: {winner} — score decomposition:")
                for part in entry["privacy"]["components"]:
                    lines.append(
                        f"  {part['name']:<20} raw={part['raw']:<10.5g} "
                        f"score={part['score']:.4f} "
                        f"weight={part['weight']:.2f} "
                        f"-> {part['weighted']:.4f}"
                    )
                break
    if report.get("cache"):
        cache = report["cache"]
        lines.append(
            f"store {cache.get('hits', 0)}/{cache.get('misses', 0)} "
            "hit/miss"
        )
    return "\n".join(lines)
