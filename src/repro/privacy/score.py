"""Auditable composite privacy score (weighted LPS-style decomposition).

One number per configuration, built the way the LPS pattern builds a
local-DP risk score: a weighted sum of normalized sub-scores, each in
``[0, 1]``, with policy-controlled weights and the full decomposition
reported next to the total so the score is auditable rather than
oracular.  Higher is more private.

Sub-scores and their normalizers:

* ``disclosure`` — the Monte-Carlo disclosure probability at the
  reference ``p_x``, scaled against :data:`DISCLOSURE_CEILING`;
* ``mutual_information`` — normalized leakage ``I(R;V)/H(R)``, scaled
  against :data:`LEAKAGE_CEILING`;
* ``slice_guarantee`` — the mean key-counted breaking cost per node
  (how many distinct link keys the eavesdropper must capture before a
  reconstruction way opens), scaled against :data:`GUARANTEE_TARGET`
  breaks;
* ``collusion`` — the coalition disclosure rate at the reference
  coalition size, scaled against :data:`COLLUSION_CEILING`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..errors import AnalysisError

__all__ = [
    "COLLUSION_CEILING",
    "DEFAULT_WEIGHTS",
    "DISCLOSURE_CEILING",
    "GUARANTEE_TARGET",
    "LEAKAGE_CEILING",
    "PrivacyScore",
    "ScoreComponent",
    "composite_privacy_score",
]

#: Policy weights of the decomposition (normalized to sum to 1).
DEFAULT_WEIGHTS: Dict[str, float] = {
    "disclosure": 0.30,
    "mutual_information": 0.25,
    "slice_guarantee": 0.25,
    "collusion": 0.20,
}

#: Disclosure probability that scores 0 — twice the worst Figure 5
#: value (degree 7, l = 2, p_x = 0.1 gives ≈ 0.025 analytically).
DISCLOSURE_CEILING = 0.05
#: Normalized leakage that scores 0 (same scale: leakage ≈ disclosure).
LEAKAGE_CEILING = 0.05
#: Link/key breaks per node at which the guarantee sub-score saturates.
GUARANTEE_TARGET = 4.0
#: Coalition disclosure rate that scores 0.
COLLUSION_CEILING = 0.25


@dataclass(frozen=True)
class ScoreComponent:
    """One normalized sub-score of the decomposition."""

    name: str
    raw: float
    score: float
    weight: float

    @property
    def weighted(self) -> float:
        return self.weight * self.score

    def to_jsonable(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "raw": self.raw,
            "score": self.score,
            "weight": self.weight,
            "weighted": self.weighted,
        }


@dataclass(frozen=True)
class PrivacyScore:
    """The composite score plus its full decomposition."""

    value: float
    components: Tuple[ScoreComponent, ...]

    def component(self, name: str) -> ScoreComponent:
        for part in self.components:
            if part.name == name:
                return part
        raise AnalysisError(f"no score component named {name!r}")

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "score": self.value,
            "components": [part.to_jsonable() for part in self.components],
        }


def _clip01(value: float) -> float:
    return min(1.0, max(0.0, value))


def composite_privacy_score(
    *,
    disclosure_rate: float,
    leakage_fraction: float,
    breaking_cost: float,
    collusion_rate: float,
    weights: Optional[Mapping[str, float]] = None,
) -> PrivacyScore:
    """Fold the four metrics into one auditable score.

    ``breaking_cost`` is the *mean* per-node key-counted breaking cost
    (use the mean rather than the min: boundary nodes with no incoming
    slices legitimately cost one link under Equation 11, so the min is
    1 for every scheme and carries no signal).  ``weights`` overrides
    :data:`DEFAULT_WEIGHTS` (missing keys default to 0); they are
    normalized internally, so only ratios matter.
    """
    table = dict(weights) if weights is not None else dict(DEFAULT_WEIGHTS)
    unknown = set(table) - set(DEFAULT_WEIGHTS)
    if unknown:
        raise AnalysisError(f"unknown score weights: {sorted(unknown)}")
    if any(value < 0 for value in table.values()):
        raise AnalysisError("score weights must be >= 0")
    total_weight = sum(table.values())
    if total_weight <= 0:
        raise AnalysisError("score weights must not all be zero")

    normalized = {
        "disclosure": 1.0 - _clip01(disclosure_rate / DISCLOSURE_CEILING),
        "mutual_information": 1.0
        - _clip01(leakage_fraction / LEAKAGE_CEILING),
        "slice_guarantee": _clip01(breaking_cost / GUARANTEE_TARGET),
        "collusion": 1.0 - _clip01(collusion_rate / COLLUSION_CEILING),
    }
    raw = {
        "disclosure": disclosure_rate,
        "mutual_information": leakage_fraction,
        "slice_guarantee": breaking_cost,
        "collusion": collusion_rate,
    }
    components = tuple(
        ScoreComponent(
            name=name,
            raw=float(raw[name]),
            score=normalized[name],
            weight=table.get(name, 0.0) / total_weight,
        )
        for name in DEFAULT_WEIGHTS
    )
    return PrivacyScore(
        value=sum(part.weighted for part in components),
        components=components,
    )
