"""Workload generators: generic readings and the AMI metering scenario."""

from .metering import HouseholdProfile, MeteringWorkload, bill_shaving_offset
from .readings import (
    constant_readings,
    gradient_readings,
    count_readings,
    gaussian_readings,
    hotspot_readings,
    uniform_readings,
)

__all__ = [
    "constant_readings",
    "count_readings",
    "uniform_readings",
    "gaussian_readings",
    "hotspot_readings",
    "gradient_readings",
    "MeteringWorkload",
    "HouseholdProfile",
    "bill_shaving_offset",
]
