"""Sensor-reading generators.

Every generator returns ``{node_id: int}`` for the sensors of a
topology (node 0, the base station, never reads).  Readings are
integers — the aggregation pipeline is exact-integer end to end — so
real-valued phenomena should be scaled to a fixed-point resolution by
the caller (the metering workload scales watts to whole watts).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import ConfigurationError
from ..net.topology import Topology

__all__ = [
    "constant_readings",
    "count_readings",
    "uniform_readings",
    "gaussian_readings",
    "hotspot_readings",
    "gradient_readings",
]


def _sensor_ids(topology: Topology, base_station: int):
    return (
        node_id
        for node_id in range(topology.node_count)
        if node_id != base_station
    )


def constant_readings(
    topology: Topology, value: int, *, base_station: int = 0
) -> Dict[int, int]:
    """Every sensor reads ``value``."""
    return {i: int(value) for i in _sensor_ids(topology, base_station)}


def count_readings(topology: Topology, *, base_station: int = 0) -> Dict[int, int]:
    """The COUNT workload of Figure 6: every sensor contributes 1."""
    return constant_readings(topology, 1, base_station=base_station)


def uniform_readings(
    topology: Topology,
    rng: np.random.Generator,
    *,
    low: int = 0,
    high: int = 100,
    base_station: int = 0,
) -> Dict[int, int]:
    """Independent uniform integers in ``[low, high]``."""
    if low > high:
        raise ConfigurationError("low must be <= high")
    return {
        i: int(rng.integers(low, high + 1))
        for i in _sensor_ids(topology, base_station)
    }


def gaussian_readings(
    topology: Topology,
    rng: np.random.Generator,
    *,
    mean: float = 50.0,
    std: float = 10.0,
    minimum: int = 0,
    maximum: Optional[int] = None,
    base_station: int = 0,
) -> Dict[int, int]:
    """Rounded normal readings, clipped to ``[minimum, maximum]``."""
    if std < 0:
        raise ConfigurationError("std must be >= 0")
    out: Dict[int, int] = {}
    for node_id in _sensor_ids(topology, base_station):
        value = int(round(rng.normal(mean, std)))
        value = max(value, minimum)
        if maximum is not None:
            value = min(value, maximum)
        out[node_id] = value
    return out


def gradient_readings(
    topology: Topology,
    rng: np.random.Generator,
    *,
    low: int = 10,
    high: int = 110,
    noise: int = 3,
    base_station: int = 0,
) -> Dict[int, int]:
    """A smooth spatial field: readings rise along the x-axis.

    Models physical phenomena with spatial correlation (temperature,
    humidity gradients) — neighbouring sensors read similar values, the
    regime where an eavesdropper recovering *one* reading approximates
    a whole neighbourhood, which is why per-node privacy matters.
    """
    if low > high:
        raise ConfigurationError("low must be <= high")
    if noise < 0:
        raise ConfigurationError("noise must be >= 0")
    xs = [p.x for p in topology.positions]
    x_min, x_max = min(xs), max(xs)
    span = max(x_max - x_min, 1e-9)
    out: Dict[int, int] = {}
    for node_id in _sensor_ids(topology, base_station):
        frac = (topology.positions[node_id].x - x_min) / span
        base = low + frac * (high - low)
        jitter = int(rng.integers(-noise, noise + 1)) if noise else 0
        out[node_id] = int(round(base)) + jitter
    return out


def hotspot_readings(
    topology: Topology,
    rng: np.random.Generator,
    *,
    background: int = 10,
    peak: int = 200,
    hotspot_fraction: float = 0.1,
    base_station: int = 0,
) -> Dict[int, int]:
    """A spatial hotspot: sensors near a random point read hot.

    Models the event-detection workloads (fires, leaks, intrusions) the
    WSN literature motivates MAX/variance queries with.
    """
    if not 0.0 < hotspot_fraction <= 1.0:
        raise ConfigurationError("hotspot_fraction must be in (0, 1]")
    sensors = list(_sensor_ids(topology, base_station))
    center = sensors[int(rng.integers(0, len(sensors)))]
    center_pos = topology.positions[center]
    by_distance = sorted(
        sensors,
        key=lambda i: topology.positions[i].distance_to(center_pos),
    )
    hot_count = max(1, int(round(hotspot_fraction * len(sensors))))
    hot = set(by_distance[:hot_count])
    out: Dict[int, int] = {}
    for node_id in sensors:
        base = background + int(rng.integers(0, max(background // 2, 1) + 1))
        if node_id in hot:
            base += peak + int(rng.integers(0, peak // 4 + 1))
        out[node_id] = base
    return out
