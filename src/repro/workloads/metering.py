"""Advanced-metering (AMI) workload — the paper's motivating example.

Section I motivates iPDA with smart-grid metering: advanced meters
reveal occupancy and behaviour (the privacy threat) and a dishonest
party may shift or shrink reported usage (the integrity threat).  This
module synthesises a neighbourhood of households with time-of-day load
profiles so the examples and benchmarks can run the metering scenario
end to end: per-interval demand readings in whole watts, occupancy-
driven peaks, and a helper that perturbs a meter the way a bill-shaving
attacker would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..errors import ConfigurationError
from ..net.topology import Topology

__all__ = ["HouseholdProfile", "MeteringWorkload", "bill_shaving_offset"]

#: Base load shape over 24 hours (fraction of the household peak), a
#: stylised residential double-hump: morning and evening peaks.
_HOURLY_SHAPE: List[float] = [
    0.25, 0.22, 0.20, 0.20, 0.22, 0.30,  # 00-05: night trough
    0.45, 0.60, 0.55, 0.40, 0.35, 0.35,  # 06-11: morning ramp
    0.38, 0.36, 0.35, 0.38, 0.45, 0.65,  # 12-17: afternoon
    0.85, 1.00, 0.95, 0.80, 0.55, 0.35,  # 18-23: evening peak
]


@dataclass(frozen=True)
class HouseholdProfile:
    """One metered premise.

    ``peak_watts`` scales the shared daily shape; ``occupied`` premises
    follow it, vacant ones flatline at standby load — exactly the
    occupancy signal the paper warns eavesdroppers can extract.
    """

    meter_id: int
    peak_watts: int
    occupied: bool
    standby_watts: int = 120

    def demand_watts(self, hour: int, rng: np.random.Generator) -> int:
        """Instantaneous demand at ``hour`` (0-23), with ±10% noise."""
        if not 0 <= hour < 24:
            raise ConfigurationError("hour must be in 0..23")
        if not self.occupied:
            base = float(self.standby_watts)
        else:
            base = self.standby_watts + self.peak_watts * _HOURLY_SHAPE[hour]
        noisy = base * float(rng.uniform(0.9, 1.1))
        return max(int(round(noisy)), 0)


class MeteringWorkload:
    """A neighbourhood of advanced meters over a deployment.

    One meter per sensor node; the base station is the utility's data
    concentrator.
    """

    def __init__(
        self,
        topology: Topology,
        rng: np.random.Generator,
        *,
        base_station: int = 0,
        occupancy_rate: float = 0.85,
        peak_low: int = 1500,
        peak_high: int = 6000,
    ):
        if not 0.0 <= occupancy_rate <= 1.0:
            raise ConfigurationError("occupancy_rate must be a probability")
        if peak_low > peak_high or peak_low <= 0:
            raise ConfigurationError("bad peak bounds")
        self.topology = topology
        self.base_station = base_station
        self._rng = rng
        self.households: Dict[int, HouseholdProfile] = {}
        for node_id in range(topology.node_count):
            if node_id == base_station:
                continue
            self.households[node_id] = HouseholdProfile(
                meter_id=node_id,
                peak_watts=int(rng.integers(peak_low, peak_high + 1)),
                occupied=bool(rng.random() < occupancy_rate),
            )

    def readings_at(self, hour: int) -> Dict[int, int]:
        """Demand of every meter at the given hour, in whole watts."""
        return {
            node_id: profile.demand_watts(hour, self._rng)
            for node_id, profile in sorted(self.households.items())
        }

    def daily_readings(self) -> Dict[int, Dict[int, int]]:
        """``{hour: {meter: watts}}`` for a full day."""
        return {hour: self.readings_at(hour) for hour in range(24)}

    def true_total(self, readings: Dict[int, int]) -> int:
        """Feeder-level demand the utility should see."""
        return sum(readings.values())


def bill_shaving_offset(
    readings: Dict[int, int], shave_fraction: float = 0.3
) -> int:
    """The offset a bill-shaving polluter injects (Section I).

    A dishonest organisation "may reduce the total usage reported";
    returns a negative offset worth ``shave_fraction`` of the honest
    feeder total.
    """
    if not 0.0 < shave_fraction <= 1.0:
        raise ConfigurationError("shave_fraction must be in (0, 1]")
    return -int(round(shave_fraction * sum(readings.values())))
