"""Participation analysis — the closed form behind Figure 8(b).

The paper measures the fraction of nodes that participate (coverage
*plus* enough slice targets of each colour) but gives no closed form.
One follows from the colouring model of Section IV-A.1: in the fixed
``p_r = p_b = 1/2`` regime every decided neighbour is an aggregator of
a uniform colour, so for a node of physical degree ``d`` the red
neighbour count is ``R ~ Binomial(d, 1/2)`` with ``B = d - R``.

* A *leaf's* reading needs ``l`` red and ``l`` blue targets:
  ``P = P(l <= R <= d - l)``.
* An *aggregator* (probability 1 under p = 1) includes itself for its
  own colour and needs only ``l - 1`` peers there:
  ``P = (1/2)·P(l-1 <= R' <= d-l) + (1/2)·P(l <= R' <= d-l+1)``
  over its ``d`` neighbours — equivalently, by symmetry,
  ``P(l-1 <= R <= d-l)`` with the node's own colour fixed red.

These compose with the coverage event exactly as factors (a) and (b)
compose in Figure 8; the functions below give per-degree and
deployment-averaged participation probabilities, cross-validated
against the simulated Phase I in the tests and the fig8 benchmark.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..errors import AnalysisError
from ..net.topology import Topology

__all__ = [
    "binomial_interval_probability",
    "leaf_participation_probability",
    "aggregator_participation_probability",
    "participation_probability",
    "expected_participation_fraction",
]


def binomial_interval_probability(n: int, low: int, high: int) -> float:
    """``P(low <= Binomial(n, 1/2) <= high)`` exactly."""
    if n < 0:
        raise AnalysisError("n must be >= 0")
    if low > high:
        return 0.0
    low = max(low, 0)
    high = min(high, n)
    if low > high:
        return 0.0
    total = sum(math.comb(n, k) for k in range(low, high + 1))
    return total / 2.0**n


def leaf_participation_probability(degree: int, slices: int) -> float:
    """P(a leaf of degree ``d`` finds l red and l blue aggregators).

    Assumes every neighbour is an aggregator of uniform colour (the
    paper's p = 1 regime) — the sparse-regime refinement would multiply
    by each neighbour's own coverage probability.
    """
    _check(degree, slices)
    return binomial_interval_probability(degree, slices, degree - slices)


def aggregator_participation_probability(degree: int, slices: int) -> float:
    """P(an aggregator of degree ``d`` can slice): needs l-1 own-colour
    peers and l of the other colour among its ``d`` neighbours."""
    _check(degree, slices)
    # Condition on own colour = red (symmetry): neighbours' red count R
    # must satisfy R >= l-1 and d - R >= l.
    return binomial_interval_probability(
        degree, slices - 1, degree - slices
    )


def participation_probability(
    degree: int, slices: int, *, aggregator_fraction: float = 1.0
) -> float:
    """Degree-d participation probability under the p = 1 regime.

    ``aggregator_fraction`` is the share of nodes that are aggregators
    (1.0 for Equation 2; lower under the adaptive Equation 1).
    """
    if not 0.0 <= aggregator_fraction <= 1.0:
        raise AnalysisError("aggregator_fraction must be in [0, 1]")
    agg = aggregator_participation_probability(degree, slices)
    leaf = leaf_participation_probability(degree, slices)
    return aggregator_fraction * agg + (1.0 - aggregator_fraction) * leaf


def expected_participation_fraction(
    degrees: Iterable[int], slices: int, *, aggregator_fraction: float = 1.0
) -> float:
    """Mean participation probability over a degree sequence."""
    values = [
        participation_probability(
            d, slices, aggregator_fraction=aggregator_fraction
        )
        for d in degrees
    ]
    if not values:
        raise AnalysisError("no degrees given")
    return sum(values) / len(values)


def participation_fraction_for_topology(
    topology: Topology, slices: int, *, base_station: int = 0
) -> float:
    """Analytic Figure 8(b) value for one deployment's degrees."""
    degrees = [
        topology.degree(node_id)
        for node_id in range(topology.node_count)
        if node_id != base_station
    ]
    return expected_participation_fraction(degrees, slices)


def _check(degree: int, slices: int) -> None:
    if degree < 0:
        raise AnalysisError("degree must be >= 0")
    if slices < 1:
        raise AnalysisError("l (slices) must be >= 1")
