"""Communication-overhead analysis (Section IV-A.2, Figure 4).

Per query, a TAG node sends 2 messages (its HELLO and its intermediate
result); an iPDA node additionally sends ``2l - 1`` encrypted slices,
for ``2l + 1`` total — an overhead ratio of ``(2l + 1) / 2``.  These
closed forms are checked against the simulator's trace counters in the
Figure 4/7 benchmarks.
"""

from __future__ import annotations

from ..errors import AnalysisError
from ..sim.messages import (
    AggregateMessage,
    HelloMessage,
    SliceMessage,
)

__all__ = [
    "tag_messages_per_node",
    "ipda_messages_per_node",
    "overhead_ratio",
    "tag_bytes_per_node",
    "ipda_bytes_per_node",
    "byte_overhead_ratio",
]


def tag_messages_per_node() -> int:
    """TAG: one HELLO plus one intermediate result (Figure 4a)."""
    return 2


def ipda_messages_per_node(slices: int) -> int:
    """iPDA: HELLO + (2l-1) slices + intermediate result (Figure 4b).

    Holds in the paper's recommended ``p = 1`` regime where every node
    is an aggregator and keeps one slice locally; a leaf node would send
    ``2l`` slices instead.
    """
    if slices < 1:
        raise AnalysisError("l (slices) must be >= 1")
    return 2 * slices + 1


def overhead_ratio(slices: int) -> float:
    """``(2l + 1) / 2`` — the headline of Section IV-A.2."""
    return ipda_messages_per_node(slices) / tag_messages_per_node()


def _hello_bytes() -> int:
    return HelloMessage(src=0, dst=-1).size_bytes


def _aggregate_bytes() -> int:
    return AggregateMessage(src=0, dst=1).size_bytes


def _slice_bytes() -> int:
    return SliceMessage(src=0, dst=1, ciphertext=b"\x00" * 8).size_bytes


def tag_bytes_per_node() -> int:
    """Expected bytes a TAG node puts on the air per query."""
    return _hello_bytes() + _aggregate_bytes()


def ipda_bytes_per_node(slices: int) -> int:
    """Expected bytes an iPDA aggregator puts on the air per query."""
    if slices < 1:
        raise AnalysisError("l (slices) must be >= 1")
    return (
        _hello_bytes()
        + (2 * slices - 1) * _slice_bytes()
        + _aggregate_bytes()
    )


def byte_overhead_ratio(slices: int) -> float:
    """Byte-level ratio; close to ``(2l+1)/2`` under uniform packets."""
    return ipda_bytes_per_node(slices) / tag_bytes_per_node()
