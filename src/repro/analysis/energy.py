"""Radio energy model and network-lifetime estimates.

The paper motivates in-network aggregation with bandwidth *and energy*
savings ("save resource consumptions and increase the lives time of
WSNs", Section I).  This module prices a round's trace with the
standard first-order WSN radio model (Heinzelman et al.):

    E_tx(b, d) = b * (E_ELEC + E_AMP * d^2)
    E_rx(b)    = b * E_ELEC

per *bit*, with distance ``d`` fixed at the radio range (sensors
transmit at full power — the conservative choice for disc-graph
topologies).  Reception is billed to every neighbour of the sender:
the shared medium forces all of them to decode the frame header even
when it is not addressed to them, which is exactly why overhearing is
an eavesdropping surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..errors import AnalysisError
from ..net.topology import Topology
from ..sim.trace import TraceCollector

__all__ = ["RadioEnergyModel", "EnergyReport", "price_round", "price_trace"]

#: First-order radio model constants (Heinzelman et al., 2000).
E_ELEC_J_PER_BIT = 50e-9
E_AMP_J_PER_BIT_M2 = 100e-12


@dataclass(frozen=True)
class RadioEnergyModel:
    """Per-bit transmit/receive energy costs."""

    elec_j_per_bit: float = E_ELEC_J_PER_BIT
    amp_j_per_bit_m2: float = E_AMP_J_PER_BIT_M2

    def __post_init__(self) -> None:
        if self.elec_j_per_bit <= 0 or self.amp_j_per_bit_m2 < 0:
            raise AnalysisError("energy constants must be positive")

    def tx_energy(self, size_bytes: int, distance_m: float) -> float:
        """Joules to transmit ``size_bytes`` over ``distance_m``."""
        if size_bytes < 0 or distance_m < 0:
            raise AnalysisError("size and distance must be >= 0")
        bits = size_bytes * 8
        return bits * (
            self.elec_j_per_bit + self.amp_j_per_bit_m2 * distance_m**2
        )

    def rx_energy(self, size_bytes: int) -> float:
        """Joules to receive (decode) ``size_bytes``."""
        if size_bytes < 0:
            raise AnalysisError("size must be >= 0")
        return size_bytes * 8 * self.elec_j_per_bit


@dataclass
class EnergyReport:
    """Energy bill of one aggregation round."""

    per_node_joules: Dict[int, float]

    @property
    def total_joules(self) -> float:
        """Network-wide energy for the round."""
        return sum(self.per_node_joules.values())

    @property
    def peak_joules(self) -> float:
        """The busiest node's bill — the lifetime bottleneck."""
        if not self.per_node_joules:
            return 0.0
        return max(self.per_node_joules.values())

    def rounds_until_depletion(self, battery_joules: float) -> int:
        """Rounds until the *first* node dies (network lifetime proxy)."""
        if battery_joules <= 0:
            raise AnalysisError("battery_joules must be positive")
        peak = self.peak_joules
        if peak == 0.0:
            raise AnalysisError("no energy spent: cannot project lifetime")
        return int(battery_joules / peak)


def price_round(
    sent_bytes_by_node: Mapping[int, int],
    topology: Topology,
    *,
    model: Optional[RadioEnergyModel] = None,
) -> EnergyReport:
    """Price a round given each node's transmitted byte count.

    Transmit costs follow the per-node byte counters; receive costs
    bill every neighbour of each sender for every byte it put on the
    air (shared-medium decoding).
    """
    energy_model = model if model is not None else RadioEnergyModel()
    range_m = topology.radio_range
    per_node: Dict[int, float] = {
        node_id: 0.0 for node_id in range(topology.node_count)
    }
    for sender, sent_bytes in sent_bytes_by_node.items():
        per_node[sender] += energy_model.tx_energy(sent_bytes, range_m)
        rx_cost = energy_model.rx_energy(sent_bytes)
        for neighbor in topology.neighbors(sender):
            per_node[neighbor] += rx_cost
    return EnergyReport(per_node_joules=per_node)


def price_trace(
    trace: TraceCollector,
    topology: Topology,
    *,
    model: Optional[RadioEnergyModel] = None,
) -> EnergyReport:
    """Price a finished round's :class:`TraceCollector`."""
    return price_round(trace.sent_bytes_by_node, topology, model=model)
