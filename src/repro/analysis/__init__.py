"""Closed-form analysis from Section IV-A of the paper."""

from .coverage import (
    coverage_bound_for_topology,
    coverage_lower_bound,
    coverage_lower_bound_regular,
    expected_isolated_nodes,
    isolation_probability,
    joint_isolation_probability,
    paper_worked_example,
)
from .energy import EnergyReport, RadioEnergyModel, price_trace
from .density import (
    PAPER_TABLE_I,
    density_table,
    expected_average_degree,
    minimum_nodes_for_degree,
    within_range_probability,
)
from .participation import (
    aggregator_participation_probability,
    expected_participation_fraction,
    leaf_participation_probability,
    participation_fraction_for_topology,
    participation_probability,
)
from .overhead import (
    byte_overhead_ratio,
    ipda_bytes_per_node,
    ipda_messages_per_node,
    overhead_ratio,
    tag_bytes_per_node,
    tag_messages_per_node,
)
from .privacy import (
    average_disclosure_probability,
    expected_incoming_links,
    node_disclosure_probability,
    regular_disclosure_probability,
)

__all__ = [
    "isolation_probability",
    "joint_isolation_probability",
    "expected_isolated_nodes",
    "coverage_lower_bound",
    "coverage_lower_bound_regular",
    "coverage_bound_for_topology",
    "paper_worked_example",
    "expected_incoming_links",
    "node_disclosure_probability",
    "average_disclosure_probability",
    "regular_disclosure_probability",
    "tag_messages_per_node",
    "ipda_messages_per_node",
    "overhead_ratio",
    "tag_bytes_per_node",
    "ipda_bytes_per_node",
    "byte_overhead_ratio",
    "within_range_probability",
    "expected_average_degree",
    "density_table",
    "minimum_nodes_for_degree",
    "PAPER_TABLE_I",
    "participation_probability",
    "leaf_participation_probability",
    "aggregator_participation_probability",
    "expected_participation_fraction",
    "participation_fraction_for_topology",
    "RadioEnergyModel",
    "EnergyReport",
    "price_trace",
]
