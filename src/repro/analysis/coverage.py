"""Coverage analysis of the disjoint trees (Section IV-A.1).

A node participates only if it has both a red and a blue aggregator
within one hop.  With colours assigned independently (probability
``p_r`` red, ``p_b`` blue), a node of physical degree ``d_i`` lacks a
red neighbour with probability ``p_b**d_i`` and vice versa, giving the
isolation probability of Equation 9 and the Markov-inequality coverage
bound of Equation 10:

    Φ(G) >= 1 - Σ_i p_i.

The paper's worked example — a d-regular graph with d = 10,
``p_r = p_b = 0.5``, N = 1000 — yields Φ(G) ≥ 0.999; the tests pin it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import AnalysisError
from ..net.topology import Topology

__all__ = [
    "isolation_probability",
    "coverage_lower_bound",
    "coverage_lower_bound_regular",
    "expected_isolated_nodes",
]


def _check_probs(p_red: float, p_blue: float) -> None:
    if not (0.0 < p_red < 1.0 and 0.0 < p_blue < 1.0):
        raise AnalysisError("p_red and p_blue must lie strictly in (0, 1)")
    if p_red + p_blue > 1.0 + 1e-12:
        raise AnalysisError("p_red + p_blue must not exceed 1")


def isolation_probability(
    degree: int, p_red: float = 0.5, p_blue: float = 0.5
) -> float:
    """Equation 9: ``p_i = 1 - (1 - p_b**d)(1 - p_r**d)``.

    Probability a node of physical degree ``degree`` misses a red or a
    blue neighbour (and so cannot join the aggregation).
    """
    _check_probs(p_red, p_blue)
    if degree < 0:
        raise AnalysisError("degree must be >= 0")
    missing_red = p_blue**degree  # all d neighbours turned blue-or-leaf?
    missing_blue = p_red**degree
    return 1.0 - (1.0 - missing_red) * (1.0 - missing_blue)


def expected_isolated_nodes(
    degrees: Iterable[int], p_red: float = 0.5, p_blue: float = 0.5
) -> float:
    """``E[X] = Σ_i p_i``: expected number of non-covered nodes."""
    return sum(isolation_probability(d, p_red, p_blue) for d in degrees)


def coverage_lower_bound(
    degrees: Sequence[int], p_red: float = 0.5, p_blue: float = 0.5
) -> float:
    """Equation 10: ``Φ(G) >= 1 - Σ_i p_i`` (clamped at 0).

    ``Φ(G)`` is the probability *every* node is covered by both trees.
    The bound is meaningful (near 1) only in dense networks; in sparse
    ones it degenerates to 0, which is itself informative.
    """
    bound = 1.0 - expected_isolated_nodes(degrees, p_red, p_blue)
    return max(bound, 0.0)


def coverage_lower_bound_regular(
    node_count: int,
    degree: int,
    p_red: float = 0.5,
    p_blue: float = 0.5,
) -> float:
    """Equation 10 specialised to a d-regular graph.

    For the paper's example (N=1000, d=10, 0.5/0.5) this returns
    ``1 - N * (1 - (1 - 2**-d)**2) ≈ 0.998``, i.e. ≥ 0.998 — the paper
    rounds it as Φ(G) ≥ 0.999.
    """
    if node_count < 1:
        raise AnalysisError("node_count must be >= 1")
    return coverage_lower_bound([degree] * node_count, p_red, p_blue)


def coverage_bound_for_topology(
    topology: Topology, p_red: float = 0.5, p_blue: float = 0.5
) -> float:
    """Equation 10 evaluated on a concrete deployment's degrees."""
    degrees = [topology.degree(n) for n in range(topology.node_count)]
    return coverage_lower_bound(degrees, p_red, p_blue)


def joint_isolation_probability(
    degree: int, p_red: float = 0.5, p_blue: float = 0.5
) -> float:
    """The *joint* isolation event: no red AND no blue neighbour.

    ``p_b**d * p_r**d`` — for 0.5/0.5 this is ``2**(-2d)``, the quantity
    behind the paper's worked example "Φ(G) ≥ 0.999 for N = 1000 and
    d = 10".  Note the inconsistency in the paper: its Equation 9
    defines isolation as missing red *or* blue (the operationally
    correct event — either absence blocks participation), under which
    the d = 10 example's bound degenerates to 0 and d ≈ 20 is needed for
    0.998.  Both quantities are provided; EXPERIMENTS.md records the
    discrepancy.
    """
    _check_probs(p_red, p_blue)
    if degree < 0:
        raise AnalysisError("degree must be >= 0")
    return (p_blue * p_red) ** degree


def paper_worked_example() -> float:
    """The paper's §IV-A.1 number: ``1 - 1000 * 2**-20 ≈ 0.99905``."""
    n, d = 1000, 10
    return 1.0 - n * joint_isolation_probability(d)
