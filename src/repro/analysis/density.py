"""Deployment-density analysis (Table I).

Table I maps network size to average physical degree for the paper's
400 m × 400 m field with a 50 m range.  The expected degree of a
uniform deployment is ``(N - 1) * P(|X - Y| <= r)`` where ``X, Y`` are
two independent uniform points in the square; for a square of side
``a`` and ``t = r/a <= 1`` the classic closed form is

    P(t) = π t² - (8/3) t³ + (1/2) t⁴.

(Border effects are what pull the 8.8 of Table I below the naive
``(N-1)πr²/a² ≈ 9.8``.)
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from ..errors import AnalysisError
from ..net.topology import PAPER_AREA_M, PAPER_RANGE_M

__all__ = [
    "within_range_probability",
    "expected_average_degree",
    "density_table",
    "minimum_nodes_for_degree",
    "PAPER_TABLE_I",
]

#: Table I as printed in the paper (network size -> average degree).
PAPER_TABLE_I: Dict[int, float] = {
    200: 8.8,
    300: 13.7,
    400: 18.6,
    500: 23.5,
    600: 28.4,
}


def within_range_probability(radio_range: float, area_side: float) -> float:
    """P(two uniform points in the square are within ``radio_range``)."""
    if radio_range <= 0 or area_side <= 0:
        raise AnalysisError("range and side must be positive")
    t = radio_range / area_side
    if t >= 1.0:
        raise AnalysisError(
            "closed form implemented for range < side (paper regime)"
        )
    return math.pi * t**2 - (8.0 / 3.0) * t**3 + 0.5 * t**4


def expected_average_degree(
    node_count: int,
    *,
    area_side: float = PAPER_AREA_M,
    radio_range: float = PAPER_RANGE_M,
) -> float:
    """``(N-1) * P(within range)`` — the analytic Table I column."""
    if node_count < 1:
        raise AnalysisError("node_count must be >= 1")
    return (node_count - 1) * within_range_probability(radio_range, area_side)


def density_table(
    sizes: Sequence[int] = (200, 300, 400, 500, 600),
    *,
    area_side: float = PAPER_AREA_M,
    radio_range: float = PAPER_RANGE_M,
) -> Dict[int, float]:
    """Analytic Table I for the given sizes."""
    return {
        n: expected_average_degree(
            n, area_side=area_side, radio_range=radio_range
        )
        for n in sizes
    }


def minimum_nodes_for_degree(
    target_degree: float,
    *,
    area_side: float = PAPER_AREA_M,
    radio_range: float = PAPER_RANGE_M,
) -> int:
    """Smallest N whose expected average degree reaches ``target_degree``.

    The paper concludes iPDA with l = 2 needs average density > 18
    (Section IV-B.3); this inverts the density model to a node budget.
    """
    if target_degree <= 0:
        raise AnalysisError("target_degree must be positive")
    p = within_range_probability(radio_range, area_side)
    return int(math.ceil(target_degree / p)) + 1
