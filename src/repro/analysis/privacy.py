"""Privacy-preservation capacity (Section IV-A.3, Equation 11).

An attacker who can read a given link with probability ``p_x`` learns
node ``i``'s reading by breaking either (a) all ``l`` outgoing links of
a fully transmitted cut, or (b) the ``l - 1`` outgoing links of the
self-including cut plus all of the node's incoming slice links:

    P_disclose^i(p_x) = 1 - (1 - p_x**l) * (1 - p_x**(l - 1 + E[n_l(i)]))

with the expected incoming-link count

    E[n_l(i)] = Σ_{j ∈ N(i)} (2l - 1) / d_j.

These functions power Figure 5 (average ``P_disclose`` over a random
deployment, for degree 7/17 and l = 2/3) and the worked example
(d-regular, d = 10, l = 3, p_x = 0.1 → ≈ 0.001).
"""

from __future__ import annotations

from typing import Optional

from ..errors import AnalysisError
from ..net.topology import Topology

__all__ = [
    "expected_incoming_links",
    "node_disclosure_probability",
    "average_disclosure_probability",
    "regular_disclosure_probability",
]


def _check(px: float, slices: int) -> None:
    if not 0.0 <= px <= 1.0:
        raise AnalysisError("px must be a probability")
    if slices < 1:
        raise AnalysisError("l (slices) must be >= 1")


def expected_incoming_links(
    topology: Topology, node_id: int, slices: int
) -> float:
    """``E[n_l(i)] = Σ_{j ∈ N(i)} (2l-1)/d_j``.

    Each neighbour ``j`` emits ``2l - 1`` slices spread over its own
    ``d_j`` neighbours, so it hits node ``i`` with expectation
    ``(2l-1)/d_j``.
    """
    if slices < 1:
        raise AnalysisError("l (slices) must be >= 1")
    total = 0.0
    for neighbor in topology.neighbors(node_id):
        degree = topology.degree(neighbor)
        if degree == 0:
            continue
        total += (2 * slices - 1) / degree
    return total


def node_disclosure_probability(
    px: float, slices: int, incoming_links: float
) -> float:
    """Equation 11 for one node given its expected incoming links."""
    _check(px, slices)
    if incoming_links < 0:
        raise AnalysisError("incoming_links must be >= 0")
    way_one = px**slices
    way_two = px ** (slices - 1 + incoming_links)
    return 1.0 - (1.0 - way_one) * (1.0 - way_two)


def average_disclosure_probability(
    topology: Topology,
    px: float,
    slices: int,
    *,
    skip: Optional[int] = 0,
) -> float:
    """``P_disclose(p_x)`` averaged over a deployment (Figure 5's y-axis).

    ``skip`` excludes the base station (node 0 by convention) from the
    average; pass None to average over every node.
    """
    _check(px, slices)
    total = 0.0
    count = 0
    for node_id in range(topology.node_count):
        if skip is not None and node_id == skip:
            continue
        incoming = expected_incoming_links(topology, node_id, slices)
        total += node_disclosure_probability(px, slices, incoming)
        count += 1
    if count == 0:
        raise AnalysisError("no nodes to average over")
    return total / count


def regular_disclosure_probability(
    px: float, slices: int, degree: int
) -> float:
    """Equation 11 on a d-regular graph, where ``E[n_l(i)] = 2l - 1``.

    The paper's worked example: ``l=3, d=10, p_x=0.1`` gives ≈ 0.001
    (dominated by the ``p_x**l`` term).
    """
    _check(px, slices)
    if degree < 1:
        raise AnalysisError("degree must be >= 1 for a regular graph")
    incoming = float(2 * slices - 1)
    return node_disclosure_probability(px, slices, incoming)
