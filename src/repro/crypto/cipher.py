"""Link-level stream cipher.

iPDA requires link-level encryption of data slices (Section III-C);
without it an eavesdropper who hears every transmission of a node
recovers its reading trivially.  This module provides a small, honest
stream cipher for the simulation: a keyed BLAKE2b pseudo-random
function expanded into a keystream and XORed with the plaintext.  It is
*not* meant for production security — it is meant to make the privacy
experiments exercise a real encrypt/decrypt code path, with real keys,
so that "who can read this frame" is decided by key possession and
nothing else.
"""

from __future__ import annotations

import hashlib

from ..errors import CryptoError

__all__ = ["keystream", "xor_encrypt", "xor_decrypt", "KEY_BYTES", "NONCE_BYTES"]

KEY_BYTES = 16
NONCE_BYTES = 8
_BLOCK_BYTES = 32


def keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Expand ``(key, nonce)`` into ``length`` pseudo-random bytes."""
    if len(key) != KEY_BYTES:
        raise CryptoError(f"key must be {KEY_BYTES} bytes, got {len(key)}")
    if len(nonce) != NONCE_BYTES:
        raise CryptoError(f"nonce must be {NONCE_BYTES} bytes, got {len(nonce)}")
    if length < 0:
        raise CryptoError("length must be >= 0")
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.blake2b(
            nonce + counter.to_bytes(8, "big"),
            key=key,
            digest_size=_BLOCK_BYTES,
        ).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


def xor_encrypt(plaintext: bytes, key: bytes, nonce: bytes) -> bytes:
    """Encrypt by XOR with the keystream (involution)."""
    stream = keystream(key, nonce, len(plaintext))
    return bytes(p ^ s for p, s in zip(plaintext, stream))


def xor_decrypt(ciphertext: bytes, key: bytes, nonce: bytes) -> bytes:
    """Decrypt; identical to :func:`xor_encrypt` because XOR is an involution."""
    return xor_encrypt(ciphertext, key, nonce)
