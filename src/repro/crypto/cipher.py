"""Link-level stream cipher.

iPDA requires link-level encryption of data slices (Section III-C);
without it an eavesdropper who hears every transmission of a node
recovers its reading trivially.  This module provides a small, honest
stream cipher for the simulation: a keyed BLAKE2b pseudo-random
function expanded into a keystream and XORed with the plaintext.  It is
*not* meant for production security — it is meant to make the privacy
experiments exercise a real encrypt/decrypt code path, with real keys,
so that "who can read this frame" is decided by key possession and
nothing else.

Hot-path notes: the XOR is done in one shot over big integers instead
of per byte, and two LRU layers serve the simulator's retransmission
pattern (the MAC re-encrypts the *same* frame on every ARQ attempt):
``_expand`` caches expanded keystreams per ``(key, nonce, length)``
and ``_xor_encrypt_cached`` caches whole ciphertexts per
``(plaintext, key, nonce)``.  Both caches are pure — nonces are derived
from ``(src, dst, round, seq)`` and never reused with different
plaintexts by the protocols, and even if they were, XOR is a pure
function of its inputs, so cached results are always correct.  The
public :func:`xor_encrypt` normalizes any bytes-like plaintext
(``bytes``, ``bytearray``, ``memoryview``) before the cached call, so
unhashable inputs keep working.  Tradeoff, stated plainly: the caches
pin up to ``maxsize`` recent ``(plaintext, key, nonce, ciphertext)``
tuples in process memory for the process lifetime.  That is acceptable
here because this cipher exists to *model* link encryption in a
simulator (see above — it is explicitly not production security);
do not reuse this caching pattern where key/plaintext residency
matters.  The ``_keystream_reference``/``_xor_encrypt_reference``
implementations preserve the original byte-at-a-time semantics for
equivalence tests.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Iterable, List, Tuple

from ..errors import CryptoError

__all__ = [
    "keystream",
    "xor_encrypt",
    "xor_encrypt_batch",
    "xor_decrypt",
    "KEY_BYTES",
    "NONCE_BYTES",
]

KEY_BYTES = 16
NONCE_BYTES = 8
_BLOCK_BYTES = 32


@lru_cache(maxsize=1024)
def _expand(key: bytes, nonce: bytes, length: int) -> Tuple[bytes, int]:
    """Expanded keystream as ``(bytes, big-endian int)`` (cached)."""
    if len(key) != KEY_BYTES:
        raise CryptoError(f"key must be {KEY_BYTES} bytes, got {len(key)}")
    if len(nonce) != NONCE_BYTES:
        raise CryptoError(f"nonce must be {NONCE_BYTES} bytes, got {len(nonce)}")
    if length < 0:
        raise CryptoError("length must be >= 0")
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.blake2b(
            nonce + counter.to_bytes(8, "big"),
            key=key,
            digest_size=_BLOCK_BYTES,
        ).digest()
        out.extend(block)
        counter += 1
    stream = bytes(out[:length])
    return stream, int.from_bytes(stream, "big")


def keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Expand ``(key, nonce)`` into ``length`` pseudo-random bytes."""
    return _expand(key, nonce, length)[0]


@lru_cache(maxsize=4096)
def _xor_encrypt_cached(plaintext: bytes, key: bytes, nonce: bytes) -> bytes:
    length = len(plaintext)
    stream_int = _expand(key, nonce, length)[1]
    if length == 0:
        return b""
    return (int.from_bytes(plaintext, "big") ^ stream_int).to_bytes(
        length, "big"
    )


def xor_encrypt(plaintext: bytes, key: bytes, nonce: bytes) -> bytes:
    """Encrypt by XOR with the keystream (involution).

    ``plaintext`` may be any bytes-like object (``bytes``,
    ``bytearray``, ``memoryview``); it is normalized to ``bytes``
    before the cached call, so unhashable inputs work.  See the module
    docstring for the cache-residency tradeoff.
    """
    if type(plaintext) is not bytes:
        plaintext = bytes(plaintext)
    return _xor_encrypt_cached(plaintext, key, nonce)


def xor_encrypt_batch(
    items: Iterable[Tuple[bytes, bytes, bytes]]
) -> List[bytes]:
    """Encrypt many ``(plaintext, key, nonce)`` items in one big-int pass.

    Byte-identical to calling :func:`xor_encrypt` per item: XOR over a
    concatenation equals concatenating the per-item XORs, and each
    item's keystream comes from the same cached :func:`_expand`.  The
    point is amortisation — a whole slice fan-out (hundreds of 8-byte
    payloads) does ONE ``int.from_bytes``/XOR/``to_bytes`` round trip
    instead of one per slice, which is what the ``cipher-xor-batch``
    micro benchmark measures.
    """
    plaintexts: List[bytes] = []
    streams: List[bytes] = []
    for plaintext, key, nonce in items:
        if type(plaintext) is not bytes:
            plaintext = bytes(plaintext)
        plaintexts.append(plaintext)
        streams.append(_expand(key, nonce, len(plaintext))[0])
    if not plaintexts:
        return []
    p_cat = b"".join(plaintexts)
    total = len(p_cat)
    if total == 0:
        return [b"" for _ in plaintexts]
    c_int = int.from_bytes(p_cat, "big") ^ int.from_bytes(
        b"".join(streams), "big"
    )
    c_cat = c_int.to_bytes(total, "big")
    out: List[bytes] = []
    offset = 0
    for plaintext in plaintexts:
        end = offset + len(plaintext)
        out.append(c_cat[offset:end])
        offset = end
    return out


def xor_decrypt(ciphertext: bytes, key: bytes, nonce: bytes) -> bytes:
    """Decrypt; identical to :func:`xor_encrypt` because XOR is an involution."""
    return xor_encrypt(ciphertext, key, nonce)


# ----------------------------------------------------------------------
# Reference implementations (pre-optimization semantics, kept for the
# bitwise-equivalence tests in tests/crypto/test_cipher.py)
# ----------------------------------------------------------------------
def _keystream_reference(key: bytes, nonce: bytes, length: int) -> bytes:
    """Original uncached block loop; byte-identical to :func:`keystream`."""
    if len(key) != KEY_BYTES:
        raise CryptoError(f"key must be {KEY_BYTES} bytes, got {len(key)}")
    if len(nonce) != NONCE_BYTES:
        raise CryptoError(f"nonce must be {NONCE_BYTES} bytes, got {len(nonce)}")
    if length < 0:
        raise CryptoError("length must be >= 0")
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.blake2b(
            nonce + counter.to_bytes(8, "big"),
            key=key,
            digest_size=_BLOCK_BYTES,
        ).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


def _xor_encrypt_reference(plaintext: bytes, key: bytes, nonce: bytes) -> bytes:
    """Original per-byte XOR; byte-identical to :func:`xor_encrypt`."""
    stream = _keystream_reference(key, nonce, len(plaintext))
    return bytes(p ^ s for p, s in zip(plaintext, stream))
