"""Sealed slice payloads.

A slice value is a signed 64-bit integer.  :func:`seal` serialises and
encrypts it under the link key with a per-slice nonce.  The nonce is
*derived*, not transmitted: both ends compute it from
``(sender, receiver, round, sequence)``, with the 2-byte sequence
riding in the clear on the slice frame.  This keeps slice frames the
same size as result frames — the paper's uniform-packet cost model —
and re-running a seeded simulation reproduces ciphertexts exactly.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

from ..errors import CryptoError
from .cipher import NONCE_BYTES, xor_decrypt, xor_encrypt, xor_encrypt_batch

__all__ = [
    "seal",
    "seal_batch",
    "open_sealed",
    "make_nonce",
    "VALUE_BYTES",
    "SEALED_BYTES",
]

VALUE_BYTES = 8
SEALED_BYTES = VALUE_BYTES

_VALUE_STRUCT = struct.Struct(">q")  # signed 64-bit big-endian


def make_nonce(src: int, dst: int, round_id: int, sequence: int) -> bytes:
    """Build the deterministic per-slice nonce both ends can compute."""
    packed = (
        (src & 0xFFFF).to_bytes(2, "big")
        + (dst & 0xFFFF).to_bytes(2, "big")
        + (round_id & 0xFFFF).to_bytes(2, "big")
        + (sequence & 0xFFFF).to_bytes(2, "big")
    )
    if len(packed) != NONCE_BYTES:
        raise CryptoError("nonce packing produced the wrong length")
    return packed


def seal(value: int, key: bytes, nonce: bytes) -> bytes:
    """Encrypt a slice value; returns the 8-byte ciphertext."""
    try:
        plaintext = _VALUE_STRUCT.pack(value)
    except struct.error as exc:
        raise CryptoError(f"slice value {value} exceeds 64-bit range") from exc
    return xor_encrypt(plaintext, key, nonce)


def seal_batch(
    values: Sequence[int],
    keys: Sequence[bytes],
    nonces: Sequence[bytes],
) -> List[bytes]:
    """Encrypt many slice values in one batched cipher pass.

    Byte-identical to ``[seal(v, k, n) for v, k, n in zip(...)]`` —
    see :func:`repro.crypto.cipher.xor_encrypt_batch` — but a whole
    fan-out's worth of 8-byte payloads shares one big-int XOR.
    """
    if not (len(values) == len(keys) == len(nonces)):
        raise CryptoError("values, keys and nonces must align")
    try:
        plaintexts = [_VALUE_STRUCT.pack(value) for value in values]
    except struct.error as exc:
        raise CryptoError(
            "slice value exceeds 64-bit range in batch"
        ) from exc
    return xor_encrypt_batch(zip(plaintexts, keys, nonces))


def open_sealed(sealed: bytes, key: bytes, nonce: bytes) -> int:
    """Decrypt a sealed slice; returns the integer value.

    Note that with a pure stream cipher a *wrong* key does not fail —
    it yields garbage.  That is faithful to the threat model: an
    eavesdropper without the key learns only noise, and the analysis
    treats any holder of the right key as able to read the slice.
    """
    if len(sealed) != SEALED_BYTES:
        raise CryptoError(
            f"sealed payload must be {SEALED_BYTES} bytes, got {len(sealed)}"
        )
    plaintext = xor_decrypt(sealed, key, nonce)
    return int(_VALUE_STRUCT.unpack(plaintext)[0])
