"""Simulated link-level cryptography and key management."""

from .cipher import KEY_BYTES, NONCE_BYTES, keystream, xor_decrypt, xor_encrypt
from .envelope import SEALED_BYTES, VALUE_BYTES, make_nonce, open_sealed, seal
from .keys import (
    GlobalKeyScheme,
    KeyManagementScheme,
    PairwiseKeyScheme,
    RandomPredistributionScheme,
)

__all__ = [
    "KEY_BYTES",
    "NONCE_BYTES",
    "keystream",
    "xor_encrypt",
    "xor_decrypt",
    "seal",
    "open_sealed",
    "make_nonce",
    "VALUE_BYTES",
    "SEALED_BYTES",
    "KeyManagementScheme",
    "PairwiseKeyScheme",
    "GlobalKeyScheme",
    "RandomPredistributionScheme",
]
