"""Key-management schemes.

Section IV-A.3 of the paper notes that iPDA "can be built on top of any
key management scheme" and that the choice drives the link-compromise
probability ``p_x``: under pairwise keys only the two endpoints can
read a link, while under random key predistribution (Eschenauer-Gligor)
third parties holding the same ring key can decrypt it.  This module
implements three schemes behind one interface so the privacy
experiments can sweep them.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from ..errors import CryptoError, KeyNotFoundError
from .cipher import KEY_BYTES

__all__ = [
    "KeyManagementScheme",
    "PairwiseKeyScheme",
    "GlobalKeyScheme",
    "RandomPredistributionScheme",
]


def _derive_key(namespace: str, seed: int, *labels: object) -> bytes:
    hasher = hashlib.blake2b(digest_size=KEY_BYTES)
    hasher.update(namespace.encode("utf-8"))
    hasher.update(str(int(seed)).encode("utf-8"))
    for label in labels:
        hasher.update(b"\x1f")
        hasher.update(repr(label).encode("utf-8"))
    return hasher.digest()


class KeyManagementScheme(ABC):
    """Decides which symmetric key protects each link, and who holds it."""

    @abstractmethod
    def link_key(self, a: int, b: int) -> bytes:
        """Return the key protecting the (undirected) link ``a — b``.

        Raises :class:`KeyNotFoundError` if the two nodes share no key.
        """

    @abstractmethod
    def key_holders(self, a: int, b: int) -> FrozenSet[int]:
        """Return all node ids able to decrypt traffic on link ``a — b``.

        Always contains ``a`` and ``b`` when a key exists.  The privacy
        analysis treats every *other* holder as a potential insider
        eavesdropper.
        """

    def can_communicate(self, a: int, b: int) -> bool:
        """True iff the pair shares a key."""
        try:
            self.link_key(a, b)
        except KeyNotFoundError:
            return False
        return True

    @staticmethod
    def _normalize(a: int, b: int) -> Tuple[int, int]:
        if a == b:
            raise CryptoError("a link needs two distinct endpoints")
        return (a, b) if a < b else (b, a)


class PairwiseKeyScheme(KeyManagementScheme):
    """A unique key per node pair: only the endpoints can decrypt.

    The strongest (and most storage-hungry) option; gives the smallest
    effective ``p_x``.
    """

    def __init__(self, node_count: int, *, seed: int = 0):
        if node_count < 0:
            raise CryptoError("node_count must be >= 0")
        self.node_count = node_count
        self._seed = seed

    def link_key(self, a: int, b: int) -> bytes:
        lo, hi = self._normalize(a, b)
        self._check(lo, hi)
        return _derive_key("pairwise", self._seed, lo, hi)

    def key_holders(self, a: int, b: int) -> FrozenSet[int]:
        lo, hi = self._normalize(a, b)
        self._check(lo, hi)
        return frozenset((lo, hi))

    def _check(self, lo: int, hi: int) -> None:
        if lo < 0 or hi >= self.node_count:
            raise KeyNotFoundError(f"nodes {lo},{hi} outside key universe")


class GlobalKeyScheme(KeyManagementScheme):
    """One network-wide key: every node can decrypt every link.

    The degenerate baseline — under it, slicing alone provides no
    privacy against insiders, which the tests assert.
    """

    def __init__(self, node_count: int, *, seed: int = 0):
        if node_count < 0:
            raise CryptoError("node_count must be >= 0")
        self.node_count = node_count
        self._seed = seed
        self._all = frozenset(range(node_count))

    def link_key(self, a: int, b: int) -> bytes:
        self._normalize(a, b)
        return _derive_key("global", self._seed)

    def key_holders(self, a: int, b: int) -> FrozenSet[int]:
        self._normalize(a, b)
        return self._all


class RandomPredistributionScheme(KeyManagementScheme):
    """Eschenauer-Gligor random key predistribution [13].

    Each node draws a ring of ``ring_size`` distinct key ids from a pool
    of ``pool_size``.  Two nodes can talk iff their rings intersect; the
    link key is derived from the smallest shared key id, and every node
    whose ring contains that id can decrypt the link — the insider
    leak the paper calls out in Section IV-A.3.
    """

    def __init__(
        self,
        node_count: int,
        *,
        pool_size: int = 1000,
        ring_size: int = 50,
        seed: int = 0,
        rng: Optional[np.random.Generator] = None,
    ):
        if node_count < 0:
            raise CryptoError("node_count must be >= 0")
        if ring_size > pool_size:
            raise CryptoError("ring_size cannot exceed pool_size")
        if ring_size < 1:
            raise CryptoError("ring_size must be >= 1")
        self.node_count = node_count
        self.pool_size = pool_size
        self.ring_size = ring_size
        self._seed = seed
        generator = rng if rng is not None else np.random.default_rng(seed)
        self._rings: List[FrozenSet[int]] = [
            frozenset(
                int(k)
                for k in generator.choice(pool_size, size=ring_size, replace=False)
            )
            for _ in range(node_count)
        ]
        self._holders_by_key: Dict[int, Set[int]] = {}
        for node_id, ring in enumerate(self._rings):
            for key_id in ring:
                self._holders_by_key.setdefault(key_id, set()).add(node_id)

    def ring(self, node_id: int) -> FrozenSet[int]:
        """Return the key-id ring assigned to ``node_id``."""
        self._check(node_id)
        return self._rings[node_id]

    def shared_key_ids(self, a: int, b: int) -> FrozenSet[int]:
        """Key ids both endpoints hold."""
        lo, hi = self._normalize(a, b)
        self._check(lo)
        self._check(hi)
        return self._rings[lo] & self._rings[hi]

    def link_key(self, a: int, b: int) -> bytes:
        shared = self.shared_key_ids(a, b)
        if not shared:
            raise KeyNotFoundError(f"nodes {a} and {b} share no ring key")
        return _derive_key("eg-pool", self._seed, min(shared))

    def key_holders(self, a: int, b: int) -> FrozenSet[int]:
        shared = self.shared_key_ids(a, b)
        if not shared:
            raise KeyNotFoundError(f"nodes {a} and {b} share no ring key")
        return frozenset(self._holders_by_key[min(shared)])

    def connectivity_probability(self) -> float:
        """Analytic probability two rings intersect (EG connectivity).

        ``1 - C(P-m, m) / C(P, m)`` with pool P and ring m, computed in
        log space for numerical stability.
        """
        import math

        p, m = self.pool_size, self.ring_size
        if 2 * m > p:
            return 1.0
        log_miss = (
            math.lgamma(p - m + 1)
            - math.lgamma(p - 2 * m + 1)
            - (math.lgamma(p + 1) - math.lgamma(p - m + 1))
        )
        return 1.0 - math.exp(log_miss)

    def _check(self, node_id: int) -> None:
        if not 0 <= node_id < self.node_count:
            raise KeyNotFoundError(f"node {node_id} outside key universe")
