"""Benchmark harness: registry, timing discipline, and JSON reports.

Each benchmark is a function ``fn(quick: bool) -> BenchResult`` whose
``value`` is a throughput (higher is better).  ``run_benchmarks`` runs
every benchmark ``repeats`` times and keeps the best repeat — wall
clocks on shared machines only ever add noise, so the fastest
observation is the closest to the true cost of the code.

Reports are plain JSON (schema :data:`BENCH_SCHEMA`) so CI can diff
them and ``repro bench --compare`` can gate on regressions without any
extra dependencies.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from contextlib import nullcontext

from ..errors import ConfigurationError
from ..obs import get_registry

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "available_benchmarks",
    "benchmark_descriptions",
    "build_report",
    "collect_environment",
    "default_report_name",
    "register_benchmark",
    "render_report_text",
    "run_benchmarks",
    "write_report",
]

#: Report schema identifier; bump when the JSON layout changes.
BENCH_SCHEMA = "repro-bench/1"


@dataclass
class BenchResult:
    """One benchmark observation.

    ``value`` is the headline throughput in ``unit`` (higher is
    better); ``wall_seconds`` and ``iterations`` describe the run that
    produced it; ``detail`` carries free-form workload parameters so a
    reader can tell two report generations apart.
    """

    name: str
    kind: str  # "micro" | "macro"
    metric: str  # e.g. "events_per_second"
    value: float
    unit: str
    wall_seconds: float
    iterations: int
    detail: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "value": self.value,
            "unit": self.unit,
            "wall_seconds": round(self.wall_seconds, 6),
            "iterations": self.iterations,
            "detail": self.detail,
        }


@dataclass
class _Benchmark:
    name: str
    kind: str
    description: str
    fn: Callable[[bool], BenchResult]


#: name -> benchmark, in registration order.
_REGISTRY: Dict[str, _Benchmark] = {}


def register_benchmark(name: str, kind: str, description: str):
    """Decorator registering ``fn(quick) -> BenchResult`` under ``name``."""
    if kind not in ("micro", "macro"):
        raise ConfigurationError(f"benchmark kind must be micro/macro, got {kind!r}")

    def decorate(fn: Callable[[bool], BenchResult]):
        if name in _REGISTRY:
            raise ConfigurationError(f"benchmark {name!r} registered twice")
        _REGISTRY[name] = _Benchmark(name, kind, description, fn)
        return fn

    return decorate


def available_benchmarks() -> List[str]:
    """Registered benchmark names, in registration order."""
    return list(_REGISTRY)


def benchmark_descriptions() -> Dict[str, str]:
    """``{name: one-line description}`` for ``repro bench --list``."""
    return {b.name: f"[{b.kind}] {b.description}" for b in _REGISTRY.values()}


def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    *,
    quick: bool = False,
    repeats: int = 3,
    progress: Optional[Callable[[str], None]] = None,
) -> List[BenchResult]:
    """Run benchmarks best-of-``repeats``; returns one result each."""
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    if names is None:
        selected = list(_REGISTRY.values())
    else:
        unknown = sorted(set(names) - set(_REGISTRY))
        if unknown:
            raise ConfigurationError(
                f"unknown benchmark(s) {unknown}; available: "
                f"{available_benchmarks()}"
            )
        selected = [_REGISTRY[name] for name in names]
    registry = get_registry()
    results: List[BenchResult] = []
    for bench in selected:
        if progress is not None:
            progress(f"running {bench.name} ...")
        best: Optional[BenchResult] = None
        timer = (
            registry.phase_timer(f"bench.{bench.name}")
            if registry is not None
            else nullcontext()
        )
        with timer:
            for _ in range(repeats):
                result = bench.fn(quick)
                # Peak RSS observed by the end of this repeat, so the
                # scale macros gate memory as well as throughput.  The
                # kernel counter is a process-wide high-water mark
                # (monotonic), so order the memory-hungry benchmarks
                # last or read the first benchmark's value as its own.
                result.detail["peak_rss_mb"] = round(_peak_rss_mb(), 1)
                if best is None or result.value > best.value:
                    best = result
        assert best is not None
        results.append(best)
    return results


def _peak_rss_mb() -> float:
    """Process peak resident set size in MiB (``getrusage`` high-water).

    Linux reports ``ru_maxrss`` in KiB, macOS in bytes.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def collect_environment() -> Dict[str, object]:
    """Provenance for a report: git sha, interpreter, host shape."""
    return {
        "git_sha": _git_sha(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def _git_sha() -> str:
    """Sha of the repository the bench was *invoked* from.

    Resolved from the current working directory, not the module path:
    when ``repro`` is installed into site-packages the module lives
    outside the benchmarked repo, and the sha of whatever repository
    happens to contain site-packages would corrupt provenance.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.getcwd(),
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip()


def build_report(
    results: Sequence[BenchResult],
    *,
    quick: bool,
    repeats: int,
    baseline_reference: Optional[Dict[str, object]] = None,
    metrics: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the JSON document ``write_report`` persists.

    ``baseline_reference`` is an optional free-form block recording the
    numbers the committed baseline was measured against (e.g. the
    pre-optimization throughput and the resulting speedups), so a
    single file tells the whole story.

    ``metrics`` is an optional :class:`repro.obs.MetricsRegistry`
    snapshot gathered while the benchmarks ran (macro benchmarks drive
    the instrumented runner), embedded verbatim under ``"metrics"``.
    """
    report: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": quick,
        "repeats": repeats,
        "environment": collect_environment(),
        "results": [result.as_dict() for result in results],
    }
    if baseline_reference is not None:
        report["baseline_reference"] = baseline_reference
    if metrics is not None:
        report["metrics"] = metrics
    return report


def default_report_name(created_utc: Optional[str] = None) -> str:
    """``BENCH_<UTC timestamp>.json`` (sortable, collision-free enough)."""
    stamp = created_utc or time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    return "BENCH_" + stamp.replace("-", "").replace(":", "") + ".json"


def write_report(report: Dict[str, object], output: Optional[str] = None) -> str:
    """Write ``report`` as JSON; returns the path written.

    ``output`` may be a directory (the default ``BENCH_*.json`` name is
    used inside it), an explicit file path, or ``None`` (current
    directory).
    """
    if output is None:
        path = default_report_name(report.get("created_utc"))
    elif os.path.isdir(output) or output.endswith(os.sep):
        os.makedirs(output, exist_ok=True)
        path = os.path.join(output, default_report_name(report.get("created_utc")))
    else:
        parent = os.path.dirname(output)
        if parent:
            os.makedirs(parent, exist_ok=True)
        path = output
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=False)
        handle.write("\n")
    return path


def render_report_text(report: Dict[str, object]) -> str:
    """Human-readable table for the terminal."""
    rows = report.get("results", [])
    lines = [
        f"benchmarks ({'quick' if report.get('quick') else 'full'} mode, "
        f"best of {report.get('repeats')}; git "
        f"{str(report.get('environment', {}).get('git_sha', '?'))[:12]})"
    ]
    if not rows:
        lines.append("  (no benchmarks selected)")
        return "\n".join(lines)
    width = max(len(row["name"]) for row in rows)
    for row in rows:
        lines.append(
            f"  {row['name'].ljust(width)}  {row['value']:>14,.0f} "
            f"{row['unit']}  ({row['kind']}, {row['wall_seconds']:.3f}s)"
        )
    return "\n".join(lines)
