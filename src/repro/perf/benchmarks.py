"""Benchmark definitions: simulator hot paths and protocol macros.

Micro benchmarks isolate the per-event cost centres (engine heap
churn, radio frame fan-out, cipher throughput); macro benchmarks time
one tiny but representative spec per protocol family end to end via
the parallel runner (``jobs=1``, cache off, so the number is the cold
per-cell cost).  Workload sizes are fixed so reports are comparable
across commits; ``quick`` only shortens the measurement, never the
per-operation shape.
"""

from __future__ import annotations

import itertools
import math
import time
from typing import Dict

import numpy as np

from ..crypto.cipher import KEY_BYTES, xor_encrypt, xor_encrypt_batch
from ..net.topology import PAPER_AREA_M, grid_deployment, random_deployment
from ..sim.engine import EventEngine
from ..sim.messages import BROADCAST, HelloMessage
from ..sim.radio import RadioConfig, RadioMedium
from ..sim.trace import TraceCollector
from .harness import BenchResult, register_benchmark

__all__ = ["MACRO_SPECS"]

#: Concurrent timers in the engine-churn benchmark.  Sized like the
#: pending-event population of a dense 500-node round (every node holds
#: a MAC backoff or protocol timer), where heap depth makes comparison
#: cost dominate.
_CHURN_TIMERS = 512

#: One representative spec per protocol family, with tiny-but-faithful
#: sweep parameters (mirrors the determinism suite's shapes).
MACRO_SPECS: Dict[str, Dict[str, object]] = {
    # iPDA (l=1,2) vs TAG on the paper's headline overhead sweep.
    "fig7": {"sizes": (150,), "repetitions": 1},
    # kiPDA: pairwise key-scheme ablation.
    "ablation-key-schemes": {
        "node_count": 120,
        "repetitions": 1,
        "coalition_size": 10,
    },
    # miPDA: m > 2 disjoint aggregation trees.
    "ablation-trees": {
        "node_count": 200,
        "tree_counts": (2,),
        "repetitions": 1,
    },
    # Loss-tolerant iPDA under crash + burst-loss faults.
    "fault-sweep": {
        "crash_fractions": (0.0,),
        "loss_levels": ("light",),
        "repetitions": 1,
    },
}


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
@register_benchmark(
    "engine-churn",
    "micro",
    f"event schedule+dispatch throughput, {_CHURN_TIMERS} concurrent timers",
)
def bench_engine_churn(quick: bool) -> BenchResult:
    total = 60_000 if quick else 200_000
    timers = _CHURN_TIMERS
    engine = EventEngine()
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] + timers <= total:
            engine.schedule(0.001, tick)

    for i in range(timers):
        engine.schedule(0.001 * (i + 1) / timers, tick)
    started = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - started
    return BenchResult(
        name="engine-churn",
        kind="micro",
        metric="events_per_second",
        value=engine.processed_events / wall,
        unit="events/s",
        wall_seconds=wall,
        iterations=engine.processed_events,
        detail={"timers": timers, "events": total},
    )


# ----------------------------------------------------------------------
# Radio
# ----------------------------------------------------------------------
def _radio_round(
    quick: bool, *, collisions: bool, loss: float, name: str
) -> BenchResult:
    """Broadcast storm on a 12x12 grid; every node sends back-to-back.

    The per-frame fan-out (degree ~8-11 at this spacing/range) is the
    radio's hot loop; with ``collisions=False`` and ``loss=0`` it rides
    the perfect-channel path, otherwise the full interference path.
    """
    frames_per_node = 8 if quick else 30
    topology = grid_deployment(12, 12, spacing=30.0, radio_range=65.0)
    engine = EventEngine()
    trace = TraceCollector()
    delivered = [0]

    def deliver(receiver: int, message, addressed: bool) -> None:
        delivered[0] += 1

    remaining = {nid: frames_per_node for nid in range(topology.node_count)}

    def send(nid: int) -> None:
        remaining[nid] -= 1
        radio.transmit(HelloMessage(src=nid, dst=BROADCAST))

    def notify(message, ok: bool) -> None:
        if remaining[message.src]:
            send(message.src)

    radio = RadioMedium(
        engine=engine,
        topology=topology,
        trace=trace,
        deliver=deliver,
        rng=np.random.default_rng(12345),
        config=RadioConfig(collisions_enabled=collisions, loss_probability=loss),
        notify_sender=notify,
    )
    for nid in range(topology.node_count):
        engine.schedule(1e-5 * (nid + 1), lambda nid=nid: send(nid))
    started = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - started
    attempts = delivered[0] + trace.total_drops
    return BenchResult(
        name=name,
        kind="micro",
        metric="reception_attempts_per_second",
        value=attempts / wall,
        unit="receptions/s",
        wall_seconds=wall,
        iterations=attempts,
        detail={
            "nodes": topology.node_count,
            "frames_per_node": frames_per_node,
            "collisions": collisions,
            "loss_probability": loss,
            "delivered": delivered[0],
            "engine_events": engine.processed_events,
        },
    )


@register_benchmark(
    "radio-broadcast-clean",
    "micro",
    "grid broadcast storm, perfect channel (engine+radio fast path)",
)
def bench_radio_clean(quick: bool) -> BenchResult:
    return _radio_round(
        quick, collisions=False, loss=0.0, name="radio-broadcast-clean"
    )


@register_benchmark(
    "radio-broadcast-contended",
    "micro",
    "grid broadcast storm with collisions and 5% Bernoulli loss",
)
def bench_radio_contended(quick: bool) -> BenchResult:
    return _radio_round(
        quick, collisions=True, loss=0.05, name="radio-broadcast-contended"
    )


# ----------------------------------------------------------------------
# Cipher
# ----------------------------------------------------------------------
_KEY = bytes(range(KEY_BYTES))

#: Monotonic source of never-before-seen nonces, so the bulk benchmark
#: measures genuine keystream expansion even when a cache is present.
_FRESH_NONCES = itertools.count(1 << 40)


@register_benchmark(
    "cipher-xor-slice",
    "micro",
    "xor_encrypt on 8-byte slice frames, 64-frame retransmission working set",
)
def bench_cipher_slice(quick: bool) -> BenchResult:
    operations = 50_000 if quick else 200_000
    working_set = [
        (value.to_bytes(8, "big"), (7_000 + value).to_bytes(8, "big"))
        for value in range(64)
    ]
    sequence = working_set * (operations // len(working_set))
    key = _KEY
    started = time.perf_counter()
    for plaintext, nonce in sequence:
        xor_encrypt(plaintext, key, nonce)
    wall = time.perf_counter() - started
    return BenchResult(
        name="cipher-xor-slice",
        kind="micro",
        metric="operations_per_second",
        value=len(sequence) / wall,
        unit="ops/s",
        wall_seconds=wall,
        iterations=len(sequence),
        detail={"frame_bytes": 8, "working_set": len(working_set)},
    )


@register_benchmark(
    "cipher-xor-bulk",
    "micro",
    "xor_encrypt on 1 KiB frames, fresh nonce per frame (no cache reuse)",
)
def bench_cipher_bulk(quick: bool) -> BenchResult:
    frames = 500 if quick else 2_000
    frame_bytes = 1024
    plaintext = bytes(frame_bytes)
    nonces = [next(_FRESH_NONCES).to_bytes(8, "big") for _ in range(frames)]
    key = _KEY
    started = time.perf_counter()
    for nonce in nonces:
        xor_encrypt(plaintext, key, nonce)
    wall = time.perf_counter() - started
    return BenchResult(
        name="cipher-xor-bulk",
        kind="micro",
        metric="bytes_per_second",
        value=frames * frame_bytes / wall,
        unit="B/s",
        wall_seconds=wall,
        iterations=frames,
        detail={"frame_bytes": frame_bytes, "fresh_nonces": True},
    )


@register_benchmark(
    "cipher-xor-batch",
    "micro",
    "xor_encrypt_batch on 256-slice fan-outs of 8-byte frames, fresh nonces",
)
def bench_cipher_batch(quick: bool) -> BenchResult:
    batches = 100 if quick else 400
    fanout = 256
    key = _KEY
    workloads = [
        [
            (
                value.to_bytes(8, "big"),
                key,
                next(_FRESH_NONCES).to_bytes(8, "big"),
            )
            for value in range(fanout)
        ]
        for _ in range(batches)
    ]
    started = time.perf_counter()
    for items in workloads:
        xor_encrypt_batch(items)
    wall = time.perf_counter() - started
    operations = batches * fanout
    return BenchResult(
        name="cipher-xor-batch",
        kind="micro",
        metric="operations_per_second",
        value=operations / wall,
        unit="ops/s",
        wall_seconds=wall,
        iterations=operations,
        detail={"frame_bytes": 8, "fanout": fanout, "fresh_nonces": True},
    )


# ----------------------------------------------------------------------
# Scale (10^4-10^5-node deployments; ROADMAP item 1)
# ----------------------------------------------------------------------
def _scale_area(node_count: int) -> float:
    """Deployment side length preserving the paper's node density.

    Scaling the 400 m square by ``sqrt(n / 600)`` keeps the average
    physical degree at the paper's ~29, so per-node fan-out work stays
    representative as ``n`` grows.
    """
    return PAPER_AREA_M * math.sqrt(node_count / 600.0)


def _topology_build(node_count: int, name: str) -> BenchResult:
    started = time.perf_counter()
    topology = random_deployment(
        node_count, area=_scale_area(node_count), seed=42
    )
    edges = int(topology.average_degree() * topology.node_count / 2)
    wall = time.perf_counter() - started
    return BenchResult(
        name=name,
        kind="macro",
        metric="nodes_per_second",
        value=node_count / wall,
        unit="nodes/s",
        wall_seconds=wall,
        iterations=node_count,
        detail={
            "nodes": node_count,
            "area_m": round(_scale_area(node_count), 1),
            "edges": edges,
            "average_degree": round(topology.average_degree(), 2),
        },
    )


@register_benchmark(
    "topology-build-10k",
    "macro",
    "10k-node random deployment: cell-grid neighbor search + CSR adjacency",
)
def bench_topology_10k(quick: bool) -> BenchResult:
    return _topology_build(10_000, "topology-build-10k")


@register_benchmark(
    "topology-build-100k",
    "macro",
    "100k-node random deployment (memory-gated: was ~80 GB as a distance matrix)",
)
def bench_topology_100k(quick: bool) -> BenchResult:
    return _topology_build(100_000, "topology-build-100k")


@register_benchmark(
    "radio-fanout-10k",
    "macro",
    "broadcast storm over a 10k-node deployment (batch delivery path)",
)
def bench_radio_fanout_10k(quick: bool) -> BenchResult:
    """Every node broadcasts once on a perfect channel at paper density.

    Frames/s over ~29-receiver fan-outs: the batch delivery path's
    macro number (one vectorized resolve + one trace update per frame).
    """
    node_count = 10_000
    frames_per_node = 1 if quick else 3
    topology = random_deployment(
        node_count, area=_scale_area(node_count), seed=42
    )
    engine = EventEngine()
    trace = TraceCollector(detail="counters")
    delivered = [0]

    def deliver(receiver: int, message, addressed: bool) -> None:
        delivered[0] += 1

    radio = RadioMedium(
        engine=engine,
        topology=topology,
        trace=trace,
        deliver=deliver,
        rng=np.random.default_rng(12345),
        config=RadioConfig(collisions_enabled=False),
    )
    for repeat in range(frames_per_node):
        for nid in range(node_count):
            engine.schedule(
                1e-5 * (repeat * node_count + nid + 1),
                lambda nid=nid: radio.transmit(
                    HelloMessage(src=nid, dst=BROADCAST)
                ),
            )
    started = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - started
    frames = node_count * frames_per_node
    return BenchResult(
        name="radio-fanout-10k",
        kind="macro",
        metric="frames_per_second",
        value=frames / wall,
        unit="frames/s",
        wall_seconds=wall,
        iterations=frames,
        detail={
            "nodes": node_count,
            "frames_per_node": frames_per_node,
            "delivered": delivered[0],
            "average_degree": round(topology.average_degree(), 2),
        },
    )


@register_benchmark(
    "radio-fanout-collisions-10k",
    "macro",
    "contended broadcast storm over a 10k-node deployment (batch collision ledger)",
)
def bench_radio_fanout_collisions_10k(quick: bool) -> BenchResult:
    """Every node broadcasts on a *collision-enabled* channel.

    The 10 µs send stagger keeps ~18 frames concurrently on the air
    (176 µs airtime), so ~29-receiver fan-outs constantly overlap:
    this is the in-flight ledger's macro number — transmit-time ruin
    flagging plus end-of-frame batch resolution, the path every
    paper-faithful (ns-2/802.11-style) experiment takes.
    """
    node_count = 10_000
    frames_per_node = 1 if quick else 2
    topology = random_deployment(
        node_count, area=_scale_area(node_count), seed=42
    )
    engine = EventEngine()
    trace = TraceCollector(detail="counters")
    delivered = [0]

    def deliver(receiver: int, message, addressed: bool) -> None:
        delivered[0] += 1

    radio = RadioMedium(
        engine=engine,
        topology=topology,
        trace=trace,
        deliver=deliver,
        rng=np.random.default_rng(12345),
        config=RadioConfig(collisions_enabled=True),
    )
    for repeat in range(frames_per_node):
        for nid in range(node_count):
            engine.schedule(
                1e-5 * (repeat * node_count + nid + 1),
                lambda nid=nid: radio.transmit(
                    HelloMessage(src=nid, dst=BROADCAST)
                ),
            )
    started = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - started
    frames = node_count * frames_per_node
    return BenchResult(
        name="radio-fanout-collisions-10k",
        kind="macro",
        metric="frames_per_second",
        value=frames / wall,
        unit="frames/s",
        wall_seconds=wall,
        iterations=frames,
        detail={
            "nodes": node_count,
            "frames_per_node": frames_per_node,
            "delivered": delivered[0],
            "dropped": trace.total_drops,
            "average_degree": round(topology.average_degree(), 2),
        },
    )


# ----------------------------------------------------------------------
# Protocol macros (one representative spec per protocol family)
# ----------------------------------------------------------------------
def _make_spec_benchmark(spec_name: str, kwargs: Dict[str, object]):
    def bench(quick: bool) -> BenchResult:
        from ..runner import execute

        started = time.perf_counter()
        table = execute(spec_name, jobs=1, cache=False, **kwargs)
        wall = time.perf_counter() - started
        cells = int(table.meta["cells"])
        return BenchResult(
            name=f"spec-{spec_name}",
            kind="macro",
            metric="cells_per_second",
            value=cells / wall,
            unit="cells/s",
            wall_seconds=wall,
            iterations=cells,
            detail=dict(kwargs),
        )

    return bench


for _spec_name, _kwargs in MACRO_SPECS.items():
    register_benchmark(
        f"spec-{_spec_name}",
        "macro",
        f"end-to-end cold run of the tiny {_spec_name} sweep",
    )(_make_spec_benchmark(_spec_name, _kwargs))
