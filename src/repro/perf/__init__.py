"""Benchmark subsystem: timed hot-path benchmarks with a JSON perf gate.

``repro bench`` runs the registered micro benchmarks (engine churn,
radio round, cipher throughput) and macro benchmarks (one tiny but
representative spec per protocol family), emits a schema'd
``BENCH_<timestamp>.json`` report, and — with ``--compare`` — gates on
throughput regressions against a committed baseline.  See
``docs/simulator.md`` ("Performance") for how to read the report.
"""

from .harness import (
    BENCH_SCHEMA,
    BenchResult,
    available_benchmarks,
    benchmark_descriptions,
    build_report,
    collect_environment,
    default_report_name,
    register_benchmark,
    render_report_text,
    run_benchmarks,
    write_report,
)
from .compare import (
    ComparisonRow,
    compare_reports,
    load_report,
    render_comparison,
)

# Importing the definitions module populates the benchmark registry.
from . import benchmarks as _definitions  # noqa: F401

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "ComparisonRow",
    "available_benchmarks",
    "benchmark_descriptions",
    "build_report",
    "collect_environment",
    "compare_reports",
    "default_report_name",
    "load_report",
    "register_benchmark",
    "render_comparison",
    "render_report_text",
    "run_benchmarks",
    "write_report",
]
