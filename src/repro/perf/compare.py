"""Regression gate: compare a bench report against a committed baseline.

The contract is deliberately simple so CI can rely on it: benchmarks
are matched by name, the metric is a throughput (higher is better),
and a benchmark *regresses* when its throughput falls more than
``fail_above`` percent below the baseline.  Improvements and
benchmarks missing from either side never fail the gate (missing ones
are reported so a silent rename can't disable the gate unnoticed).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigurationError
from .harness import BENCH_SCHEMA

__all__ = [
    "ComparisonRow",
    "compare_reports",
    "load_report",
    "render_comparison",
]


@dataclass
class ComparisonRow:
    """One benchmark's baseline-vs-current verdict."""

    name: str
    metric: str
    baseline: float
    current: float
    #: Positive = faster than baseline, negative = slower, in percent.
    change_pct: float
    regressed: bool


def load_report(path: str) -> Dict[str, object]:
    """Read and schema-check one ``BENCH_*.json`` report.

    Validates the shape of every result row, not just the top-level
    schema key: a well-schema'd report with a malformed row (``name``
    missing, ``value: null``) must fail here with a
    :class:`ConfigurationError` naming the path — never later with a
    ``KeyError``/``TypeError`` traceback from the renderer or the
    comparison gate.
    """
    try:
        with open(path) as handle:
            report = json.load(handle)
    except OSError as exc:
        raise ConfigurationError(f"cannot read bench report {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path!r} is not valid JSON: {exc}") from exc
    if not isinstance(report, dict) or report.get("schema") != BENCH_SCHEMA:
        raise ConfigurationError(
            f"{path!r} is not a {BENCH_SCHEMA} report "
            f"(schema={report.get('schema') if isinstance(report, dict) else None!r})"
        )
    results = report.get("results", [])
    if not isinstance(results, list):
        raise ConfigurationError(
            f"{path!r}: 'results' must be a list, got "
            f"{type(results).__name__}"
        )
    for index, row in enumerate(results):
        problem = _row_problem(row)
        if problem:
            raise ConfigurationError(
                f"{path!r}: results[{index}] is malformed ({problem})"
            )
    return report


def _row_problem(row: object) -> str:
    """Describe what is wrong with one result row ('' when valid)."""
    if not isinstance(row, dict):
        return f"expected an object, got {type(row).__name__}"
    if not isinstance(row.get("name"), str) or not row["name"]:
        return "missing or non-string 'name'"
    for key in ("value", "wall_seconds"):
        value = row.get(key)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return f"missing or non-numeric {key!r}"
    for key in ("kind", "unit"):
        if not isinstance(row.get(key), str):
            return f"missing or non-string {key!r}"
    return ""


def _result_index(report: Dict[str, object]) -> Dict[str, Dict[str, object]]:
    index: Dict[str, Dict[str, object]] = {}
    for row in report.get("results", []):
        index[str(row["name"])] = row
    return index


def compare_reports(
    current: Dict[str, object],
    baseline: Dict[str, object],
    *,
    fail_above: float,
) -> Tuple[List[ComparisonRow], List[str], List[str]]:
    """Return ``(rows, unmatched, warnings)`` for ``current`` vs ``baseline``.

    ``fail_above`` is the tolerated throughput drop in percent; a row
    regresses when ``current < baseline * (1 - fail_above/100)``.
    ``unmatched`` lists benchmark names present in exactly one report.
    ``warnings`` flags comparisons whose numbers are not directly
    commensurable (quick-mode report vs full-mode baseline); warnings
    never fail the gate by themselves.
    """
    if fail_above < 0:
        raise ConfigurationError(f"--fail-above must be >= 0, got {fail_above}")
    warnings: List[str] = []
    cur_quick = bool(current.get("quick"))
    base_quick = bool(baseline.get("quick"))
    if cur_quick != base_quick:
        warnings.append(
            f"mode mismatch: current report is "
            f"{'quick' if cur_quick else 'full'} but baseline is "
            f"{'quick' if base_quick else 'full'}; absolute throughput "
            f"is not directly comparable across modes"
        )
    current_index = _result_index(current)
    baseline_index = _result_index(baseline)
    rows: List[ComparisonRow] = []
    for name, row in current_index.items():
        base = baseline_index.get(name)
        if base is None:
            continue
        base_value = float(base["value"])
        cur_value = float(row["value"])
        change_pct = (
            (cur_value - base_value) / base_value * 100.0 if base_value else 0.0
        )
        rows.append(
            ComparisonRow(
                name=name,
                metric=str(row.get("metric", "")),
                baseline=base_value,
                current=cur_value,
                change_pct=change_pct,
                regressed=change_pct < -fail_above,
            )
        )
    unmatched = sorted(
        set(current_index).symmetric_difference(baseline_index)
    )
    return rows, unmatched, warnings


def render_comparison(
    rows: Sequence[ComparisonRow],
    unmatched: Sequence[str],
    *,
    fail_above: float,
    warnings: Sequence[str] = (),
) -> str:
    """Terminal-friendly comparison table plus verdict line."""
    lines = [f"regression gate: fail when throughput drops > {fail_above:g}%"]
    for warning in warnings:
        lines.append(f"  WARNING: {warning}")
    if not rows:
        lines.append("  (no benchmarks in common with the baseline)")
    else:
        width = max(len(row.name) for row in rows)
        for row in rows:
            verdict = "REGRESSED" if row.regressed else "ok"
            lines.append(
                f"  {row.name.ljust(width)}  {row.baseline:>14,.0f} -> "
                f"{row.current:>14,.0f}  {row.change_pct:+7.1f}%  {verdict}"
            )
    for name in unmatched:
        lines.append(f"  {name}: present in only one report (not gated)")
    failures = [row.name for row in rows if row.regressed]
    if failures:
        lines.append(f"FAIL: {len(failures)} regression(s): {', '.join(failures)}")
    else:
        lines.append("PASS: no benchmark regressed beyond the threshold")
    return "\n".join(lines)
