"""Benchmark regenerating the fault-injection sweep (reduced scale)."""

from __future__ import annotations

from repro.experiments import fault_sweep


def bench_fault_sweep(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fault_sweep.run(
            crash_fractions=(0.0, 0.1),
            loss_levels=("none", "light"),
            repetitions=2,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    emit(table)
    # 2 crash fractions x 2 loss levels x 3 protocol variants.
    assert len(table.rows) == 12
    by_key = {(row[0], row[1], row[2]): row for row in table.rows}
    # Fault-free cell: everyone perfect, no retry effort spent.
    clean = by_key[(0.0, "none", "ipda-robust")]
    assert clean[3] == 1.0 and clean[6] == 1.0 and clean[7] == 0.0
    # Legacy iPDA rejects every crashed round; robust iPDA never
    # rejects at this crash level and serves a close estimate.
    legacy = by_key[(0.1, "none", "ipda-legacy")]
    robust = by_key[(0.1, "none", "ipda-robust")]
    assert legacy[5] == 1.0
    assert robust[5] == 0.0
    assert robust[6] > 0.7
    # Loss tolerance costs effort: retries appear once faults do.
    assert by_key[(0.1, "light", "ipda-robust")][7] > 0


def bench_fault_session(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fault_sweep.run_session(
            rounds=5, crash_fraction=0.05, loss_level="light", seed=0
        ),
        rounds=1,
        iterations=1,
    )
    emit(table)
    columns = table.columns
    honest, polluted = table.rows
    # The headline invariant at benchmark scale: zero false rejects,
    # nothing silently wrong, pollution still caught.
    assert honest[columns.index("false_rejects")] == 0
    assert honest[columns.index("silently_wrong")] == 0
    assert polluted[columns.index("silently_wrong")] == 0
    assert polluted[columns.index("rejected")] >= 4
