"""Benchmark regenerating Table I (network size vs average degree)."""

from __future__ import annotations

from repro.experiments import table1_density


def bench_table1(benchmark, emit):
    table = benchmark.pedantic(
        lambda: table1_density.run(repetitions=5, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(table)
    measured = table.column("measured_degree")
    paper = table.column("paper_degree")
    # Shape: linear growth, within 15% of the printed Table I.
    assert all(a < b for a, b in zip(measured, measured[1:]))
    for mine, theirs in zip(measured, paper):
        assert abs(mine - theirs) / theirs < 0.15
