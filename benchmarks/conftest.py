"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures at a
reduced-but-representative scale, asserts the reproduced *shape*, and
prints the rows (run with ``pytest benchmarks/ --benchmark-only -s`` to
see them; they are also appended to ``benchmarks/results.txt``).
"""

from __future__ import annotations

import os

import pytest

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    """Start each benchmark session with a clean results log."""
    if os.path.exists(RESULTS_PATH):
        os.remove(RESULTS_PATH)
    yield


@pytest.fixture
def emit():
    """Print a table and append it to the results log."""

    def _emit(table) -> None:
        text = table.to_text()
        print()
        print(text)
        with open(RESULTS_PATH, "a") as handle:
            handle.write(text)
            handle.write("\n\n")

    return _emit
