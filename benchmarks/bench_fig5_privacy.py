"""Benchmark regenerating Figure 5 (privacy-preservation capacity)."""

from __future__ import annotations

from repro.experiments import fig5_privacy


def bench_fig5(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig5_privacy.run(seed=0, monte_carlo_trials=5),
        rounds=1,
        iterations=1,
    )
    emit(table)
    l2 = table.column("analytic_deg7_l2")
    l3 = table.column("analytic_deg7_l3")
    d17 = table.column("analytic_deg17_l2")
    # Shape: monotone in p_x; l=3 beats l=2; density-insensitive.
    assert all(a < b for a, b in zip(l2, l2[1:]))
    assert all(three < two for two, three in zip(l2, l3))
    for a, b in zip(l2, d17):
        assert abs(a - b) / max(a, b) < 0.5
    # Monte-Carlo of the concrete attack lands in the analytic ballpark
    # at the top of the sweep.
    measured = table.column("measured_deg17_l2")
    assert measured[-1] <= 5 * l2[-1] + 0.02
