"""Benchmarks for the extension studies: m trees, energy, epochs, latency."""

from __future__ import annotations

import pytest

from repro.experiments import ablations, energy, latency


def bench_ablation_trees(benchmark, emit):
    table = benchmark.pedantic(
        lambda: ablations.run_tree_count(
            node_count=600, tree_counts=(2, 3, 4), repetitions=3
        ),
        rounds=1,
        iterations=1,
    )
    emit(table)
    messages = table.column("messages_per_node")
    participation = table.column("participation")
    tolerated = table.column("tolerated_rate")
    detected = table.column("detected_rate")
    # Overhead (m*l+1) grows with m; participation shrinks.
    assert all(a < b for a, b in zip(messages, messages[1:]))
    assert all(b <= a + 1e-9 for a, b in zip(participation, participation[1:]))
    # m=2 detects but cannot tolerate; m>=3 tolerates by majority vote.
    assert all(d == pytest.approx(1.0) for d in detected)
    assert tolerated[0] == pytest.approx(0.0)
    assert tolerated[1] == pytest.approx(1.0)


def bench_energy(benchmark, emit):
    table = benchmark.pedantic(
        lambda: energy.run(node_count=400, repetitions=2),
        rounds=1,
        iterations=1,
    )
    emit(table)
    rows = {row[0]: row for row in table.rows}
    tag_total = rows["tag"][1]
    l1_total = rows["ipda l=1"][1]
    l2_total = rows["ipda l=2"][1]
    # Energy follows the (2l+1)/2 byte ratio.
    assert l1_total / tag_total == pytest.approx(1.5, rel=0.25)
    assert l2_total / tag_total == pytest.approx(2.5, rel=0.25)
    # Lifetime ordering inverts the cost ordering.
    assert rows["tag"][3] > rows["ipda l=1"][3] > rows["ipda l=2"][3]


def bench_latency(benchmark, emit):
    table = benchmark.pedantic(
        lambda: latency.run(sizes=(200, 400, 600), repetitions=2),
        rounds=1,
        iterations=1,
    )
    emit(table)
    deltas = table.column("delta_s")
    # iPDA pays the slicing window + guard over TAG at every density.
    assert all(d > 5.0 for d in deltas)


def bench_epoch_amortisation(benchmark, emit):
    from repro import IpdaConfig, RngStreams, random_deployment
    from repro.experiments.common import ExperimentTable
    from repro.protocols.epochs import EpochedIpdaSession

    def run():
        topology = random_deployment(300, seed=5)
        readings = {i: 1 for i in range(1, topology.node_count)}
        session = EpochedIpdaSession(
            topology, IpdaConfig(), streams=RngStreams(5)
        )
        session.construct_trees()
        outcomes = [session.run_epoch(readings) for _ in range(5)]
        table = ExperimentTable(
            name="Epoch amortisation: bytes per query",
            columns=["epoch", "bytes", "accepted"],
        )
        table.add_row("phase I (once)", session.construction_bytes, True)
        for outcome in outcomes:
            table.add_row(
                outcome.epoch, outcome.bytes_this_epoch, outcome.accepted
            )
        return table, outcomes, session

    table, outcomes, session = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(table)
    assert all(o.accepted for o in outcomes)
    # Every epoch is cheaper than Phase I + one epoch, i.e. the
    # standalone round; and epochs cost roughly the same as each other.
    per_epoch = [o.bytes_this_epoch for o in outcomes]
    assert max(per_epoch) < session.construction_bytes + min(per_epoch)
    assert max(per_epoch) < 1.3 * min(per_epoch)
