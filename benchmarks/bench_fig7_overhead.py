"""Benchmark regenerating Figure 7 (bandwidth iPDA vs TAG)."""

from __future__ import annotations

import pytest

from repro.experiments import fig7_overhead


def bench_fig7(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig7_overhead.run(
            sizes=(200, 300, 400, 500), repetitions=2, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    emit(table)
    tag = table.column("tag_bytes")
    for slices, expected in ((1, 1.5), (2, 2.5)):
        bytes_col = table.column(f"ipda_l{slices}_bytes")
        ratios = table.column(f"ratio_l{slices}")
        # Bytes grow with N; the dense-regime ratio approaches (2l+1)/2.
        assert all(a < b for a, b in zip(bytes_col, bytes_col[1:]))
        assert ratios[-1] == pytest.approx(expected, rel=0.15)
        # Sparse networks under-consume (non-participation).
        assert ratios[0] < ratios[-1]
    assert all(a < b for a, b in zip(tag, tag[1:]))
