"""Micro-benchmarks for the substrate components.

These track the cost of the hot paths (event engine, slicing, link
crypto, tree construction, one full radio round) so performance
regressions in the simulator are visible.
"""

from __future__ import annotations

import numpy as np

from repro import IpdaConfig, RngStreams, random_deployment
from repro.core.slicing import slice_value
from repro.core.trees import build_disjoint_trees
from repro.crypto.cipher import KEY_BYTES
from repro.crypto.envelope import make_nonce, open_sealed, seal
from repro.protocols.ipda import IpdaProtocol
from repro.sim.engine import EventEngine

KEY = bytes(range(KEY_BYTES))


def bench_event_engine_throughput(benchmark):
    def run():
        engine = EventEngine()
        for i in range(10_000):
            engine.schedule(float(i % 97) * 1e-3, lambda: None)
        engine.run()
        return engine.processed_events

    assert benchmark(run) == 10_000


def bench_slice_value(benchmark):
    rng = np.random.default_rng(0)
    result = benchmark(lambda: slice_value(12345, 2, rng, magnitude=10**6))
    assert sum(result) == 12345


def bench_seal_open_roundtrip(benchmark):
    nonce = make_nonce(1, 2, 3, 4)

    def run():
        return open_sealed(seal(98765, KEY, nonce), KEY, nonce)

    assert benchmark(run) == 98765


def bench_tree_construction_400(benchmark):
    topology = random_deployment(400, seed=1)

    def run():
        return build_disjoint_trees(
            topology, IpdaConfig(), np.random.default_rng(1)
        )

    trees = benchmark(run)
    assert trees.is_node_disjoint()


def bench_full_ipda_round_300(benchmark):
    topology = random_deployment(300, seed=2)
    readings = {i: 1 for i in range(1, topology.node_count)}

    def run():
        return IpdaProtocol().run_round(
            topology, readings, streams=RngStreams(2)
        )

    outcome = benchmark.pedantic(run, rounds=2, iterations=1)
    assert outcome.s_red == outcome.s_blue
