"""Benchmarks for the ablation studies DESIGN.md calls out."""

from __future__ import annotations

import pytest

from repro.experiments import ablations


def bench_ablation_slices(benchmark, emit):
    table = benchmark.pedantic(
        lambda: ablations.run_slices(
            node_count=400, slice_counts=(1, 2, 3), repetitions=2
        ),
        rounds=1,
        iterations=1,
    )
    emit(table)
    privacy = table.column("analytic_pdisclose")
    overhead = table.column("overhead_ratio")
    accuracy = table.column("accuracy")
    assert all(b < a for a, b in zip(privacy, privacy[1:]))
    assert all(a < b for a, b in zip(overhead, overhead[1:]))
    # Accuracy degrades gently with l (more targets required).
    assert accuracy[-1] <= accuracy[0] + 0.02


def bench_ablation_budget(benchmark, emit):
    table = benchmark.pedantic(
        lambda: ablations.run_budget(
            node_count=400, budgets=(2, 4, 8), repetitions=5
        ),
        rounds=1,
        iterations=1,
    )
    emit(table)
    fraction = table.column("aggregator_fraction")
    assert all(a <= b for a, b in zip(fraction, fraction[1:]))


def bench_ablation_role_mode(benchmark, emit):
    table = benchmark.pedantic(
        lambda: ablations.run_role_mode(node_count=400, repetitions=5),
        rounds=1,
        iterations=1,
    )
    emit(table)
    rows = {row[0]: row for row in table.rows}
    # Adaptive mode deploys fewer aggregators than p = 1.
    assert rows["adaptive"][1] < rows["fixed"][1]


def bench_ablation_key_schemes(benchmark, emit):
    table = benchmark.pedantic(
        lambda: ablations.run_key_schemes(node_count=250, repetitions=2),
        rounds=1,
        iterations=1,
    )
    emit(table)
    rows = {row[0]: row for row in table.rows}
    # Pairwise keys allow full participation; sparse EG rings cost some.
    assert rows["pairwise"][1] >= rows["eg-predistribution"][1]


def bench_ablation_threshold(benchmark, emit):
    table = benchmark.pedantic(
        lambda: ablations.run_threshold(
            node_count=300, thresholds=(0, 5, 100), repetitions=3
        ),
        rounds=1,
        iterations=1,
    )
    emit(table)
    detect = table.column("attack_detect_rate")
    accept = table.column("benign_accept_rate")
    # Detection decreases as Th grows; benign acceptance never shrinks.
    assert detect[0] >= detect[-1]
    assert all(a <= b + 1e-9 for a, b in zip(accept, accept[1:]))
