"""Benchmark regenerating the Figure 1 tree-construction walk-through."""

from __future__ import annotations

from repro.experiments import fig1_trees


def bench_fig1(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig1_trees.run(seed=1), rounds=1, iterations=1
    )
    emit(table)
    values = dict(zip(table.column("property"), table.column("value")))
    assert values["node-disjoint"] is True
    assert values["red tree consistent"] is True
    assert values["blue tree consistent"] is True
    assert values["covered fraction"] > 0.9
