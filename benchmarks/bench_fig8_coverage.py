"""Benchmark regenerating Figure 8 (coverage, participation, accuracy)."""

from __future__ import annotations

from repro.experiments import fig8_coverage_accuracy


def bench_fig8(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig8_coverage_accuracy.run(
            sizes=(200, 300, 400, 500),
            repetitions=2,
            coverage_repetitions=10,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    emit(table)
    covered = table.column("covered_fraction")
    part_l1 = table.column("participants_l1")
    part_l2 = table.column("participants_l2")
    acc_l2 = table.column("accuracy_ipda_l2")
    tag = table.column("accuracy_tag")
    # (a) coverage rises steeply between N=200 and N=400, saturating.
    assert covered[0] < 0.7
    assert covered[2] > 0.9
    # (b) participation <= coverage; l=2 <= l=1 (needs more targets).
    for c, p1, p2 in zip(covered, part_l1, part_l2):
        assert p2 <= p1 <= c + 1e-9
    # (c) accuracy follows the same rise; TAG stays above iPDA in the
    # sparse regime; everyone is >= 0.9 once degree >= 18 (N >= 400).
    assert acc_l2[0] < acc_l2[2]
    assert tag[0] > acc_l2[0]
    assert acc_l2[2] > 0.9
    assert tag[2] > 0.9
