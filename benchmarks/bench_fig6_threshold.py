"""Benchmark regenerating Figure 6 (red/blue agreement, Th choice)."""

from __future__ import annotations

from repro.experiments import fig6_threshold


def bench_fig6(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig6_threshold.run(
            sizes=(200, 300, 400, 500), repetitions=2, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    emit(table)
    perfect = table.column("perfect")
    for slices in (1, 2):
        reds = table.column(f"red_l{slices}")
        blues = table.column(f"blue_l{slices}")
        diffs = table.column(f"maxdiff_l{slices}")
        # The two trees agree within the paper's Th = 5 everywhere.
        assert all(d <= 5 for d in diffs)
        # Collected values sit below the perfect line and approach it
        # with density (the Figure 6 picture).
        assert all(r <= p for r, p in zip(reds, perfect))
        assert reds[-1] / perfect[-1] > reds[0] / perfect[0]
        assert blues[-1] / perfect[-1] > 0.9
