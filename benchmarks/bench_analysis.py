"""Benchmarks for the closed-form worked examples (Section IV-A).

Covers experiment ids A1 (coverage bound), A2 (privacy worked example),
and A3 (overhead ratio) from DESIGN.md.
"""

from __future__ import annotations

import pytest

from repro.analysis.coverage import (
    coverage_lower_bound_regular,
    paper_worked_example,
)
from repro.analysis.overhead import overhead_ratio
from repro.analysis.privacy import regular_disclosure_probability
from repro.experiments.common import ExperimentTable


def bench_worked_examples(benchmark, emit):
    def run():
        table = ExperimentTable(
            name="Section IV-A worked examples",
            columns=["id", "quantity", "paper", "reproduced"],
        )
        table.add_row(
            "A1",
            "coverage bound, N=1000 d=10 (paper's joint-event variant)",
            0.999,
            paper_worked_example(),
        )
        table.add_row(
            "A1'",
            "Eq. 9/10 OR-event bound needs d≈20: 1000 nodes, d=20",
            0.998,
            coverage_lower_bound_regular(1000, 20),
        )
        table.add_row(
            "A2",
            "P_disclose, d-regular d=10, l=3, px=0.1",
            0.001,
            regular_disclosure_probability(0.1, 3, 10),
        )
        table.add_row("A3", "overhead ratio l=2", 2.5, overhead_ratio(2))
        table.add_note(
            "A1 vs A1': the paper's Eq. 9 (OR) and its worked example "
            "(AND) disagree; both are reproduced — see EXPERIMENTS.md"
        )
        return table

    table = benchmark(run)
    emit(table)
    rows = {row[0]: row for row in table.rows}
    assert rows["A1"][3] == pytest.approx(0.99905, abs=1e-4)
    assert rows["A1'"][3] >= 0.998
    assert rows["A2"][3] == pytest.approx(0.001, rel=0.01)
    assert rows["A3"][3] == 2.5
