"""Benchmarks for the content-addressed experiment store.

Measures the three costs the store trades against `run_cell` work:
digesting a sweep, storing fresh results, and serving a warm re-run —
and asserts the headline win (warm executes zero cells and reproduces
the cold table byte for byte).
"""

from __future__ import annotations

from repro.runner import execute, get_spec
from repro.store import CellStore, cell_digest, spec_fingerprint

FIG7_KWARGS = dict(sizes=(150, 250), repetitions=2)


def bench_digest_sweep(benchmark):
    spec = get_spec("fig7")
    cells = spec.cells(**FIG7_KWARGS)
    fingerprint = spec_fingerprint(spec)

    digests = benchmark.pedantic(
        lambda: [cell_digest(cell, fingerprint) for cell in cells],
        rounds=5,
        iterations=1,
    )
    assert len(digests) == len(cells)
    assert len(set(digests)) == len(cells)


def bench_cold_run_with_store(benchmark, tmp_path, emit):
    store = CellStore(tmp_path / "cache")
    table = benchmark.pedantic(
        lambda: execute("fig7", jobs=1, cache=store, **FIG7_KWARGS),
        rounds=1,
        iterations=1,
    )
    emit(table)
    assert table.meta["cache_misses"] == table.meta["cells"]
    assert table.meta["cache_bytes_written"] > 0


def bench_warm_rerun_is_pure_hits(benchmark, tmp_path, emit):
    store = CellStore(tmp_path / "cache")
    cold = execute("fig7", jobs=1, cache=store, **FIG7_KWARGS)

    warm = benchmark.pedantic(
        lambda: execute("fig7", jobs=1, cache=store, **FIG7_KWARGS),
        rounds=3,
        iterations=1,
    )
    emit(warm)
    assert warm.meta["cache_hits"] == warm.meta["cells"]
    assert warm.meta["cache_misses"] == 0
    assert warm.to_csv() == cold.to_csv()
