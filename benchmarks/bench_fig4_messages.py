"""Benchmark regenerating Figure 4 (per-node message budgets)."""

from __future__ import annotations

import pytest

from repro.experiments import fig4_messages


def bench_fig4(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig4_messages.run(node_count=400, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(table)
    rows = {row[0]: row for row in table.rows}
    # TAG: 2 messages; iPDA: 2l+1 — within 10% including MAC retries.
    for name, row in rows.items():
        _protocol, analytic, measured = row
        assert measured == pytest.approx(analytic, rel=0.10)
