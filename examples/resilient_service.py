#!/usr/bin/env python3
"""Self-healing aggregation service: pollution, then crashes.

Act 1 — the base station serves a stream of queries while two
compromised aggregators tamper with every round they sit on.  The
session (`repro.core.session.AggregationSession`) rejects the polluted
rounds, triggers the Section III-D bisection hunt after a rejection
streak, excludes each culprit in O(log N) probe rounds, and resumes
clean service.

Act 2 — with the attackers gone, a cluster of meters fail-stops
mid-stream (a power cut; they come back two rounds later).  To the
paper's bare `|S_b - S_r| <= Th` test a crashed aggregator is
indistinguishable from a polluting one, so the legacy service would
reject those rounds too.  With loss tolerance enabled
(`IpdaConfig(robustness=...)`) the piece accounting explains the gap:
the crashed rounds come back *degraded* — served from the
better-covered tree with an explicit coverage statement, never
rejected and never silently wrong — and service returns to full
acceptance when the meters recover.

Run:  python examples/resilient_service.py
"""

from __future__ import annotations

import numpy as np

from repro import IpdaConfig, RobustnessConfig, random_deployment
from repro.core.session import AggregationSession
from repro.workloads import MeteringWorkload

SEED = 23
ATTACKERS = {17: -8_000, 140: 12_000}  # meter id -> per-round offset
CRASHED = {31, 52, 88, 120, 203}  # the mid-stream power cut
CRASH_ROUNDS = range(16, 18)  # rounds the cut spans (then they revive)


def main() -> None:
    topology = random_deployment(350, seed=SEED)
    workload = MeteringWorkload(topology, np.random.default_rng(SEED))
    readings = workload.readings_at(19)
    true_kw = workload.true_total(readings) / 1000

    session = AggregationSession(
        topology,
        IpdaConfig(robustness=RobustnessConfig()),
        compromised=ATTACKERS,
        hunt_after=2,
        seed=SEED,
    )
    print(f"{topology.node_count - 1} meters, true feeder {true_kw:.1f} kW")
    print(f"compromised aggregators: {sorted(ATTACKERS)}\n")

    print("round  outcome   reported kW  note")
    for round_id in range(21):
        crashed = CRASHED if round_id in CRASH_ROUNDS else None
        record = session.run_round(readings, crashed=crashed)
        reported = "     -" if record.reported is None else (
            f"{record.reported / 1000:10.1f}"
        )
        note = ""
        if record.newly_excluded is not None:
            note = (f"hunted node {record.newly_excluded} in "
                    f"{record.hunt_rounds} probe rounds -> excluded")
        elif record.degraded:
            note = (f"{len(record.crashed)} meters dark, coverage "
                    f"{record.coverage:.0%}, confidence "
                    f"{record.confidence:.0%}")
        elif crashed:
            note = f"{len(record.crashed)} meters dark"
        print(f"{record.round_id:5d}  {record.outcome:8s} "
              f"{reported}  {note}")

    print(f"\nexcluded: {sorted(session.excluded)} "
          f"(attackers were {sorted(ATTACKERS)})")
    print(f"acceptance rate over the session: "
          f"{session.acceptance_rate:.0%}")

    hunted = {r.newly_excluded for r in session.history} - {None}
    assert hunted == set(ATTACKERS), "hunt missed an attacker"
    crash_records = [
        r for r in session.history if r.round_id in CRASH_ROUNDS
    ]
    assert all(r.outcome != "rejected" for r in crash_records), (
        "a benign crash round was falsely rejected"
    )
    assert not any(r.hunt_rounds for r in crash_records), (
        "benign crashes must never trigger the polluter hunt"
    )
    clean_tail = session.history[-3:]
    assert all(r.accepted for r in clean_tail), "service did not recover"
    print("service recovered: crash rounds degraded (not rejected), "
          "last rounds all accepted")


if __name__ == "__main__":
    main()
