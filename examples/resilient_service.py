#!/usr/bin/env python3
"""Self-healing aggregation service under a persistent attacker.

The base station serves a stream of queries while two compromised
aggregators tamper with every round they sit on.  The session
(`repro.core.session.AggregationSession`) rejects the polluted rounds,
triggers the Section III-D bisection hunt after a rejection streak,
excludes each culprit in O(log N) probe rounds, and resumes clean
service — the full operational story of the paper's integrity design.

Run:  python examples/resilient_service.py
"""

from __future__ import annotations

import numpy as np

from repro import IpdaConfig, random_deployment
from repro.core.session import AggregationSession
from repro.workloads import MeteringWorkload

SEED = 23
ATTACKERS = {17: -8_000, 140: 12_000}  # meter id -> per-round offset


def main() -> None:
    topology = random_deployment(350, seed=SEED)
    workload = MeteringWorkload(topology, np.random.default_rng(SEED))
    readings = workload.readings_at(19)
    true_kw = workload.true_total(readings) / 1000

    session = AggregationSession(
        topology,
        IpdaConfig(),
        compromised=ATTACKERS,
        hunt_after=2,
        seed=SEED,
    )
    print(f"{topology.node_count - 1} meters, true feeder {true_kw:.1f} kW")
    print(f"compromised aggregators: {sorted(ATTACKERS)}\n")

    print("round  accepted  reported kW  note")
    for _ in range(16):
        record = session.run_round(readings)
        reported = "     -" if record.reported is None else (
            f"{record.reported / 1000:10.1f}"
        )
        note = ""
        if record.newly_excluded is not None:
            note = (f"hunted node {record.newly_excluded} in "
                    f"{record.hunt_rounds} probe rounds -> excluded")
        print(f"{record.round_id:5d}  {str(record.accepted):8s} "
              f"{reported}  {note}")
        if session.excluded >= set(ATTACKERS):
            pass  # keep serving; the tail shows clean rounds

    print(f"\nexcluded: {sorted(session.excluded)} "
          f"(attackers were {sorted(ATTACKERS)})")
    print(f"acceptance rate over the session: "
          f"{session.acceptance_rate:.0%}")
    clean_tail = [r for r in session.history[-3:]]
    assert all(r.accepted for r in clean_tail), "service did not recover"
    print("service recovered: last rounds all accepted, reported totals "
          "within the excluded meters of the truth")


if __name__ == "__main__":
    main()
