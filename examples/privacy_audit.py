#!/usr/bin/env python3
"""Privacy audit: how much can adversaries actually learn?

Runs the concrete eavesdropping attack against recorded slice traffic
and compares it with the paper's Equation 11, across

* link-compromise strength p_x (Figure 5's x-axis),
* slice count l (the privacy knob),
* key-management schemes (pairwise vs Eschenauer-Gligor vs global),
* colluding coalitions of compromised nodes (the future-work threat).

Run:  python examples/privacy_audit.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    IpdaConfig,
    RandomPredistributionScheme,
    random_deployment,
    run_lossless_round,
)
from repro.analysis import average_disclosure_probability
from repro.attacks import (
    LinkEavesdropper,
    coalition_disclosure,
    random_coalition,
)
from repro.rng import RngStreams

SEED = 11


def main() -> None:
    topology = random_deployment(400, seed=SEED)
    readings = {
        i: 100 + (i * 17) % 300 for i in range(1, topology.node_count)
    }
    print(f"{topology.node_count} nodes, degree "
          f"{topology.average_degree():.1f}\n")

    # --- p_x sweep, l = 2 vs 3 (Figure 5's picture) --------------------
    print("eavesdropping: disclosure vs link-compromise strength")
    print("  px     l=2 measured  l=2 Eq.11   l=3 measured  l=3 Eq.11")
    rounds = {
        l: run_lossless_round(
            topology,
            readings,
            IpdaConfig(slices=l),
            rng=RngStreams(SEED).get("audit", l),
            record_flows=True,
        )
        for l in (2, 3)
    }
    for px in (0.02, 0.05, 0.1, 0.2):
        cells = []
        for l in (2, 3):
            attacker = LinkEavesdropper(px, seed=SEED)
            measured = attacker.monte_carlo_disclosure(
                topology, rounds[l], trials=25
            )
            analytic = average_disclosure_probability(topology, px, l)
            cells.append(f"{measured:11.4f}  {analytic:9.4f}")
        print(f"  {px:4.2f}  {cells[0]}   {cells[1]}")

    # --- Key-management scheme comparison --------------------------------
    print("\nkey management: who else can read a link?")
    eg = RandomPredistributionScheme(
        topology.node_count, pool_size=500, ring_size=40, seed=SEED
    )
    print(f"  EG predistribution: ring 40 of pool 500, connectivity "
          f"{eg.connectivity_probability():.3f}")
    sample_links = topology.edges()[:200]
    extra_holders = [
        len(eg.key_holders(a, b)) - 2
        for a, b in sample_links
        if eg.can_communicate(a, b)
    ]
    print(f"  mean third-party holders per link: "
          f"{np.mean(extra_holders):.1f} "
          f"(pairwise keys: 0 — the insider gap of Section IV-A.3)")

    # --- Collusion (future work) ------------------------------------------
    print("\ncollusion: coalition of compromised nodes pooling slices")
    print("  coalition size   disclosed (l=2)   disclosed (l=3)")
    rng = np.random.default_rng(SEED)
    for size in (10, 40, 120):
        coalition = random_coalition(topology, size, rng, exclude={0})
        cells = []
        for l in (2, 3):
            report = coalition_disclosure(rounds[l], coalition)
            cells.append(f"{report.disclosure_rate:14.3f}")
        print(f"  {size:14d} {cells[0]}   {cells[1]}")
    print("\nlarger coalitions leak more; more slices resist longer — the")
    print("collusive-attack extension the paper leaves as future work.")


if __name__ == "__main__":
    main()
