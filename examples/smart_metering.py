#!/usr/bin/env python3
"""Advanced-metering scenario — the paper's motivating application.

A utility reads a neighbourhood of 400 advanced meters through in-
network aggregation.  The scenario walks the paper's two threats:

* privacy — individual demand curves reveal occupancy; iPDA's slicing
  keeps them from eavesdroppers while the feeder total stays exact;
* integrity — a bill-shaving organisation compromises an aggregator to
  shrink the reported usage; the disjoint trees catch it, and the
  bisection protocol localises the culprit in O(log N) rounds.

Run:  python examples/smart_metering.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    IpdaConfig,
    IpdaProtocol,
    RngStreams,
    build_disjoint_trees,
    random_deployment,
    run_lossless_round,
)
from repro.attacks import localize_persistent_polluter
from repro.sim.messages import TreeColor
from repro.workloads import MeteringWorkload, bill_shaving_offset

SEED = 42


def main() -> None:
    topology = random_deployment(400, seed=SEED)
    workload = MeteringWorkload(topology, np.random.default_rng(SEED))
    vacant = sum(1 for h in workload.households.values() if not h.occupied)
    print(f"{len(workload.households)} metered households "
          f"({vacant} vacant), degree {topology.average_degree():.1f}")

    # --- A day of private feeder readings ------------------------------
    print("\nhour  true feeder kW  reported kW  accepted")
    protocol = IpdaProtocol(IpdaConfig())
    for hour in (3, 8, 13, 19):
        readings = workload.readings_at(hour)
        outcome = protocol.run_round(
            topology, readings, streams=RngStreams(SEED + hour), round_id=hour
        )
        true_kw = workload.true_total(readings) / 1000
        reported_kw = (outcome.reported or 0) / 1000
        print(f"  {hour:02d}        {true_kw:8.1f}     {reported_kw:8.1f}"
              f"      {outcome.accepted}")

    # --- Bill shaving ----------------------------------------------------
    readings = workload.readings_at(19)  # evening peak, highest bill
    trees = build_disjoint_trees(
        topology, IpdaConfig(), np.random.default_rng(SEED)
    )
    thief = sorted(trees.aggregators(TreeColor.RED))[2]
    offset = bill_shaving_offset(readings, shave_fraction=0.3)
    print(f"\nnode {thief} shaves 30% off the feeder total "
          f"({offset / 1000:.1f} kW)")

    attacked = run_lossless_round(
        topology,
        readings,
        IpdaConfig(),
        seed=SEED,
        polluters={thief: offset},
        trees=trees,
    )
    print(f"  red tree : {attacked.s_red / 1000:9.1f} kW")
    print(f"  blue tree: {attacked.s_blue / 1000:9.1f} kW")
    print(f"  accepted : {attacked.accepted}  <- theft detected")

    # --- Localisation ----------------------------------------------------
    hunt = localize_persistent_polluter(
        topology,
        readings,
        polluter=thief,
        offset=offset,
        rng=np.random.default_rng(SEED + 1),
        trees=trees,
    )
    print(f"\nbisection hunt over {hunt.suspects_initial} suspects:")
    print(f"  identified node {hunt.identified} "
          f"(correct: {hunt.correct}) in {hunt.rounds_used} rounds "
          f"(log2 bound holds: {hunt.within_log_bound})")

    # --- Clean rounds resume after exclusion -----------------------------
    recovered = run_lossless_round(
        topology,
        readings,
        IpdaConfig(),
        seed=SEED + 2,
        contributors=set(readings) - {hunt.identified},
        trees=trees,
    )
    print(f"\nwith node {hunt.identified} excluded: accepted = "
          f"{recovered.accepted}, feeder = {recovered.reported / 1000:.1f} kW")


if __name__ == "__main__":
    main()
