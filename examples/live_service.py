#!/usr/bin/env python3
"""Live aggregation service: concurrent clients over one standing fleet.

A smart-building operator stands up the 200-meter paper deployment
once — Phase I tree construction is paid a single time — and then
three independent clients query it concurrently over the asyncio
front-end:

* a **dashboard** polling the average reading every cycle,
* an **auditor** requesting the exact sum and meter count,
* an **alarm watcher** asking the KIPDA lane for the hottest meter
  (an extremum, which slicing cannot express — so it rides a
  different protocol lane over the same standing network).

Queries arriving within one dispatch period are batched into a single
iPDA epoch: the service answers `sum`, `avg`, and `count` from one
(Σr, N) pair, so five concurrent additive queries cost one epoch of
radio traffic, not five.

Act 2 re-arms the same scenario with a mid-stream fault plan — two
meters crash at epoch 2 and a burst-loss channel degrades every link
from epoch 1 — and measures availability the way `repro serve --bench
--faults` does, once with the paper's fire-and-forget iPDA and once
with the loss-tolerant lane (`--robust`).

Run:  python examples/live_service.py
"""

from __future__ import annotations

import asyncio
from dataclasses import replace

from repro.serve import (
    AggregationQuery,
    AggregationService,
    FleetConfig,
    ServiceConfig,
    ServiceCore,
    parse_fault_spec,
)

FLEET = FleetConfig(node_count=200, seed=7)
SERVICE = ServiceConfig(capacity=32, max_batch=16, epoch_seconds=0.1)


async def dashboard(service: AggregationService, polls: int):
    return [
        await service.submit(AggregationQuery("avg"))
        for _ in range(polls)
    ]


async def auditor(service: AggregationService):
    return await asyncio.gather(
        service.submit(AggregationQuery("sum")),
        service.submit(AggregationQuery("count")),
    )


async def alarm_watcher(service: AggregationService):
    return await service.submit(AggregationQuery("max", protocol="kipda"))


async def act_one() -> None:
    print("=== Act 1: three clients, one standing fleet ===")
    core = ServiceCore(config=SERVICE, fleet_config=FLEET)
    async with AggregationService(core) as service:
        polls, audit, alarm = await asyncio.gather(
            dashboard(service, polls=3),
            auditor(service),
            alarm_watcher(service),
        )

    results = polls + list(audit) + [alarm]
    for r in results:
        value = "-" if r.value is None else f"{r.value:.2f}"
        print(
            f"  {r.protocol:>5}/{r.kind:<5} epoch {r.epoch}  "
            f"verdict {r.verdict:<8} value {value:>9}  "
            f"latency {r.latency * 1000:5.1f} ms"
        )
    epochs = {r.epoch for r in results}
    print(
        f"  {len(results)} queries served by {len(epochs)} epochs "
        "(batching shares each epoch's radio traffic)"
    )


async def chaos_run(robust: bool) -> None:
    # max_batch=4 spreads the 16 queries over 4+ epochs so the fault
    # plan (loss from epoch 1, crashes at epoch 2) lands mid-stream.
    core = ServiceCore(
        config=replace(SERVICE, max_batch=4),
        fleet_config=replace(FLEET, robust=robust),
        faults=parse_fault_spec("crash=2@2+3,loss=light@1"),
    )
    async with AggregationService(core) as service:
        results = await asyncio.gather(*(
            service.submit(AggregationQuery("sum", deadline_seconds=5.0))
            for _ in range(16)
        ))

    verdicts: dict = {}
    for r in results:
        verdicts[r.verdict] = verdicts.get(r.verdict, 0) + 1
    summary = ", ".join(f"{n} {v}" for v, n in sorted(verdicts.items()))
    availability = sum(r.ok for r in results) / len(results)
    lane = "loss-tolerant" if robust else "fire-and-forget"
    print(f"  {lane:>16}: {summary}  (availability {availability:.3f})")


async def act_two() -> None:
    print("=== Act 2: same service under crash + burst loss ===")
    await chaos_run(robust=False)
    await chaos_run(robust=True)


def main() -> None:
    asyncio.run(act_one())
    print()
    asyncio.run(act_two())


if __name__ == "__main__":
    main()
