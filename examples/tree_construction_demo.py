#!/usr/bin/env python3
"""Figure 1 walk-through: watching the disjoint trees grow.

Builds the red/blue aggregation trees on a small field and renders an
ASCII map of the roles, plus the structural properties Figure 1
illustrates (node-disjointness, interleaving, coverage).

Run:  python examples/tree_construction_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import IpdaConfig, build_disjoint_trees, random_deployment
from repro.net.graphs import tree_depth
from repro.sim.messages import TreeColor

SEED = 3
FIELD = 160.0
CELL = 8.0  # metres per character cell


def ascii_map(topology, trees) -> str:
    """Render the field: R/B aggregators, '.' leaves, '*' base station."""
    cols = int(FIELD / CELL) + 1
    grid = [[" " for _ in range(cols)] for _ in range(cols)]
    for node_id, point in enumerate(topology.positions):
        row = int(point.y / CELL)
        col = int(point.x / CELL)
        if node_id == trees.base_station:
            mark = "*"
        else:
            role = trees.role_of(node_id)
            if role.color is TreeColor.RED:
                mark = "R"
            elif role.color is TreeColor.BLUE:
                mark = "B"
            else:
                mark = "."
        grid[row][col] = mark
    return "\n".join("".join(row) for row in reversed(grid))


def main() -> None:
    topology = random_deployment(
        70, area=FIELD, radio_range=40.0, seed=SEED
    )
    config = IpdaConfig()
    trees = build_disjoint_trees(
        topology, config, np.random.default_rng(SEED)
    )

    print("field map (R = red aggregator, B = blue, . = leaf, * = base "
          "station):\n")
    print(ascii_map(topology, trees))

    red = trees.aggregators(TreeColor.RED)
    blue = trees.aggregators(TreeColor.BLUE)
    covered = trees.covered_nodes() - {trees.base_station}
    sensors = topology.node_count - 1
    print(f"\nred aggregators : {len(red)}")
    print(f"blue aggregators: {len(blue)}")
    print(f"node-disjoint   : {trees.is_node_disjoint()}")
    print(f"red tree depth  : {tree_depth(trees.parent_map(TreeColor.RED))}")
    print(f"blue tree depth : {tree_depth(trees.parent_map(TreeColor.BLUE))}")
    print(f"covered         : {len(covered)}/{sensors} "
          f"({len(covered) / sensors:.0%}) — heard both colours in range")
    participants = trees.participants(config.slices)
    print(f"can participate : {len(participants)}/{sensors} "
          f"(enough aggregators of each colour for l={config.slices} "
          "slices)")

    # The interleaving property: most nodes see both colours nearby.
    both_in_range = sum(
        1
        for n in range(1, topology.node_count)
        if trees.heard_aggregators(n, TreeColor.RED)
        and trees.heard_aggregators(n, TreeColor.BLUE)
    )
    print(f"interleaving    : {both_in_range}/{sensors} nodes have both "
          "colours one hop away (Figure 1(c)'s picture)")


if __name__ == "__main__":
    main()
