#!/usr/bin/env python3
"""Regenerate every paper figure as SVG + CSV from the public API.

Equivalent to ``python -m repro all --csv out/ --svg out/`` but shown
as library calls, so downstream users can script their own sweeps.
Pass ``--fast`` for reduced sweeps (seconds) and an output directory.

Run:  python examples/paper_figures.py [--fast] [outdir]
"""

from __future__ import annotations

import os
import sys
import time

from repro.experiments import (
    fig5_privacy,
    fig6_threshold,
    fig7_overhead,
    fig8_coverage_accuracy,
    table1_density,
)
from repro.viz import render_known_figure


def main(argv) -> int:
    fast = "--fast" in argv
    positional = [a for a in argv if not a.startswith("--")]
    outdir = positional[0] if positional else "paper_figures"
    os.makedirs(outdir, exist_ok=True)
    sizes = (200, 300, 400) if fast else (200, 300, 400, 500, 600)
    reps = 1 if fast else 3

    jobs = [
        ("table1", lambda: table1_density.run(sizes, repetitions=3)),
        ("fig5", lambda: fig5_privacy.run(monte_carlo_trials=0)),
        ("fig6", lambda: fig6_threshold.run(sizes, repetitions=reps)),
        ("fig7", lambda: fig7_overhead.run(sizes, repetitions=reps)),
        (
            "fig8",
            lambda: fig8_coverage_accuracy.run(
                sizes, repetitions=reps, coverage_repetitions=5 if fast else 20
            ),
        ),
    ]
    for name, runner in jobs:
        started = time.time()
        table = runner()
        table.write_csv(os.path.join(outdir, f"{name}.csv"))
        svg_path = render_known_figure(name, table, outdir)
        print(f"{name}: {svg_path or '(no chart form)'} "
              f"[{time.time() - started:.1f}s]")
    print(f"\nwrote CSV + SVG into {outdir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
