#!/usr/bin/env python3
"""Quickstart: one private, integrity-protected aggregation round.

Deploys the paper's reference network (400 sensors on 400 m x 400 m,
50 m radio range), runs a COUNT query under TAG (the baseline) and
under iPDA, then shows what iPDA buys: the same answer, plus an
integrity check that catches a tampering aggregator — at the predicted
(2l+1)/2 bandwidth cost.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import IpdaConfig, IpdaProtocol, RngStreams, TagProtocol, random_deployment

SEED = 7


def main() -> None:
    topology = random_deployment(400, seed=SEED)
    print(f"deployed {topology.node_count} nodes, "
          f"average degree {topology.average_degree():.1f}")

    # Every sensor answers a COUNT query with "1".
    readings = {i: 1 for i in range(1, topology.node_count)}
    true_count = len(readings)

    # --- Baseline: TAG ------------------------------------------------
    tag = TagProtocol().run_round(topology, readings, streams=RngStreams(SEED))
    print("\nTAG (no privacy, no integrity)")
    print(f"  collected count : {tag.reported} / {true_count}")
    print(f"  bytes on air    : {tag.bytes_sent}")

    # --- iPDA ----------------------------------------------------------
    config = IpdaConfig(slices=2)  # paper's recommended l
    ipda = IpdaProtocol(config).run_round(
        topology, readings, streams=RngStreams(SEED)
    )
    print("\niPDA (l=2, Th=5)")
    print(f"  red tree sum    : {ipda.s_red}")
    print(f"  blue tree sum   : {ipda.s_blue}")
    print(f"  accepted        : {ipda.accepted}")
    print(f"  collected count : {ipda.reported} / {true_count}")
    print(f"  bytes on air    : {ipda.bytes_sent} "
          f"({ipda.bytes_sent / tag.bytes_sent:.2f}x TAG; paper predicts "
          f"{(2 * config.slices + 1) / 2:.2f}x)")

    # --- Pollution attack ----------------------------------------------
    polluter = max(ipda.covered)  # a compromised aggregator
    attacked = IpdaProtocol(config).run_round(
        topology,
        readings,
        streams=RngStreams(SEED),
        polluters={polluter: 250},
    )
    print(f"\nnode {polluter} tampers (+250) with its subtree result")
    print(f"  red tree sum    : {attacked.s_red}")
    print(f"  blue tree sum   : {attacked.s_blue}")
    print(f"  |difference|    : {abs(attacked.s_red - attacked.s_blue)} "
          f"> Th={config.threshold}")
    print(f"  accepted        : {attacked.accepted}  <- pollution detected")


if __name__ == "__main__":
    main()
