#!/usr/bin/env python3
"""Statistics beyond SUM: the Section II-B additive reduction.

AVERAGE, VARIANCE and STDDEV decompose into additive components that
ride iPDA unchanged; MIN/MAX ride either the power-mean approximation
(the paper's k-th power trick) or the KIPDA-style k-indistinguishable
vector protocol shipped as an extension.

Run:  python examples/statistics_suite.py
"""

from __future__ import annotations

import statistics

import numpy as np

from repro import (
    IpdaProtocol,
    KipdaMaxProtocol,
    RadioConfig,
    RngStreams,
    aggregate_statistic,
    random_deployment,
    statistic_by_name,
)
from repro.protocols.kipda import KipdaConfig
from repro.workloads import hotspot_readings

SEED = 5


def main() -> None:
    topology = random_deployment(400, seed=SEED)
    rng = np.random.default_rng(SEED)
    readings = hotspot_readings(
        topology, rng, background=20, peak=400, hotspot_fraction=0.08
    )
    values = list(readings.values())
    print(f"{len(readings)} sensors; a hotspot pushes some readings to "
          f"{max(values)} while the field sits near {min(values)}\n")

    protocol = IpdaProtocol(
        radio_config=RadioConfig(collisions_enabled=False)
    )

    print("statistic   true        via iPDA    rounds")
    for name, truth in (
        ("sum", sum(values)),
        ("count", len(values)),
        ("average", statistics.mean(values)),
        ("variance", statistics.pvariance(values)),
        ("stddev", statistics.pstdev(values)),
    ):
        statistic = statistic_by_name(name)
        value, outcomes = aggregate_statistic(
            protocol, topology, readings, statistic, streams=RngStreams(SEED)
        )
        print(f"{name:10s}  {truth:10.2f}  {value:10.2f}"
              f"  {len(outcomes)}")

    # --- MAX via the paper's power-mean limit -----------------------------
    # x^k components are arbitrary-precision integers, far beyond the
    # radio's 64-bit payloads, so the power-mean ride uses the lossless
    # pipeline (exact transport, same slicing/tree machinery).
    from repro import run_lossless_round

    power_max = statistic_by_name("max")
    encoded = {
        node_id: power_max.encode(v)[0] for node_id, v in readings.items()
    }
    lossless = run_lossless_round(topology, encoded, seed=SEED)
    value = power_max.decode([lossless.reported])
    print(f"\nmax via power mean (k={power_max.exponent}): "
          f"{value:.0f} (true {max(values)}) — the (Σ x^k)^(1/k) limit "
          "of Section II-B, on the lossless pipeline")

    # --- MAX/MIN via KIPDA-style camouflage vectors ------------------------
    from repro.protocols.kipda import KipdaMinProtocol

    config = KipdaConfig(vector_size=12, real_positions=3, camouflage_high=600)
    kipda_max = KipdaMaxProtocol(config)
    outcome = kipda_max.run_round(topology, readings, streams=RngStreams(SEED))
    print(f"max via KIPDA vectors:        {outcome.reported} "
          f"(true {outcome.true_max}, exact: {outcome.exact})")
    low = KipdaMinProtocol(config).run_round(
        topology, readings, streams=RngStreams(SEED)
    )
    print(f"min via KIPDA vectors:        {low.reported} "
          f"(true {low.true_max}, exact: {low.exact})")
    print(f"  eavesdropper's chance of guessing a real position: "
          f"{config.indistinguishability:.2f} "
          "(the k-indistinguishability guarantee)")


if __name__ == "__main__":
    main()
